"""The PARED driver: the solve→estimate→adapt→repartition→migrate loop of
Section 2, run SPMD over the simulated runtime.

``run_pared`` launches ``p`` ranks.  Rank ``coordinator`` plays ``P_C``: it
computes the initial partition of the coarse dual graph, maintains ``G``
from the weight deltas of phases P1/P2, repartitions it when the measured
imbalance exceeds the trigger, and directs tree migrations (P3).  All other
phases run symmetrically on every rank.

The coordinator's copy of ``G`` is assembled *only* from P2 messages — it
never peeks at the replica — so the test-suite can verify the distributed
weight protocol against the directly computed dual graph.  (The single
exception is coordinator *failover*: a freshly promoted ``P_C`` bootstraps
the recovery re-assignment from its replica, then rebuilds ``G`` from full
P2 reports on the next round.)

Crash survival (``ParedConfig(recover=True)``): every rank checkpoints its
protocol state at each round barrier (:class:`~repro.runtime.recovery.
CheckpointStore`).  When a peer dies, the runtime raises
:class:`~repro.runtime.recovery.PeerCrashed` from the survivors' blocked
receives; they then flush their channels, agree on the newest checkpoint
every survivor holds, re-assign the dead rank's coarse roots via the
ordinary repartition/migration machinery (tree payloads owed by the dead
rank are reconstructed from the replicated mesh), and replay the
interrupted round with ``p-1`` ranks.  All of it is deterministic given the
fault plan's seed, so two runs of the same configuration produce identical
recovered histories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Optional

import numpy as np

from repro.core.pnr import PNR
from repro.graph.csr import WeightedGraph
from repro.mesh.adapt import AdaptiveMesh
from repro.mesh.dualgraph import (
    coarse_dual_graph,
    coarse_root_centroids,
    leaf_assignment_from_roots,
)
from repro.mesh.metrics import cut_size, shared_vertex_count
from repro.pared.distmesh import DistributedMesh
from repro.pared.migrate import execute_migration, plan_recovery_assignment
from repro.pared.weights import (
    diff_weight_report,
    full_weight_report,
    keep_last,
    merge_fresh_values,
    split_edge_keys,
)
from repro.partition.distributed import (
    DKLConfig,
    dkl_ml_refine_comm,
    dkl_refine_comm,
)
from repro.partition.registry import make_repartitioner
from repro.perf import PERF
from repro.runtime.faults import FaultPlan
from repro.runtime.recovery import (
    NO_CHECKPOINT,
    CheckpointStore,
    PeerCrashed,
    RoundCheckpoint,
    agree_replay_round,
    compact_owner,
    expand_owner,
    flush_channels,
)
from repro.runtime.simmpi import spmd_run
from repro.testing import (
    check_dual_graph_weights,
    check_halo_weights,
    check_history_agreement,
    check_migration_conservation,
    check_monotone_refinement,
    check_partition_validity,
    check_recovery_partition,
    check_replica_agreement,
)

#: collective-commit tag: no rank returns before every live rank finished
COMMIT_TAG = 73

#: strategies that run the decentralized round shape (neighbor halo P2,
#: SPMD tournament P3, no coordinator graph)
_DKL_FAMILY = ("dkl", "dkl-ml")


@dataclass
class ParedConfig:
    """Configuration of a PARED run.

    Attributes
    ----------
    p:
        Number of ranks.
    make_mesh:
        Factory returning the initial :class:`AdaptiveMesh` (called once per
        rank; must be deterministic so replicas agree).
    marker:
        ``marker(amesh, round) -> (refine_leaf_ids, coarsen_leaf_ids)``.
        Conceptually each rank evaluates it on owned leaves; determinism
        lets every rank call it on the replica and keep only owned ids.
    rounds:
        Number of adapt/repartition rounds.
    pnr:
        The repartitioner (Equation 1 parameters).
    imbalance_trigger:
        Repartition only when the coordinator's measured imbalance exceeds
        this (the paper's "user-supplied workload imbalance").
    coordinator:
        Rank playing ``P_C``.  If it dies (with ``recover=True``) the
        lowest surviving rank is promoted.
    faults:
        Optional :class:`~repro.runtime.faults.FaultPlan` perturbing the
        simulated wire (``None`` — the default — keeps the runtime on its
        original zero-overhead path).
    audit:
        When True, every round ends with the :mod:`repro.testing`
        invariant checks (partition validity, replica agreement, migration
        conservation, dual-graph weight consistency, monotone-or-rollback
        refinement); violations raise
        :class:`~repro.testing.InvariantViolation`.  Audit traffic is
        labelled phase ``audit`` so P0–P3 accounting stays clean.
    recover:
        When True, a rank dying of an injected crash or retry exhaustion is
        survived: the remaining ranks checkpoint/replay the round and adopt
        the dead rank's trees (see the module docstring).  When False (the
        default) a crash surfaces as a clean
        :class:`~repro.runtime.faults.SimRankCrashed`, exactly as before.
    transport:
        Wire backend for the ranks: ``"thread"`` (default), ``"process"``
        (one OS process per rank over sockets — real multi-core
        wall-clock), ``"shm"`` (process ranks exchanging data frames
        through shared-memory rings with a persistent rank pool — the
        low-copy fast path, see :mod:`repro.runtime.shm`), or ``None``
        to defer to the ``REPRO_TRANSPORT`` environment variable.
        ``faults``/``recover`` require the thread backend (see
        :func:`~repro.runtime.transport.resolve_backend`).
    partitioner:
        Repartitioning strategy by registry name
        (:data:`repro.partition.PARTITIONERS`): ``"pnr"`` (default — the
        paper's Equation-1 multilevel KL on the coordinator), ``"mlkl"``
        (scratch Multilevel-KL, label-aligned), ``"sfc"`` (Morton/Hilbert
        space-filling-curve splitting of the coarse-root centroids —
        O(n log n), incremental, the cheap high-throughput baseline), or
        ``"dkl"`` (distributed boundary refinement,
        :mod:`repro.partition.distributed`), or ``"dkl-ml"`` (its
        multilevel flavour: intra-part coarsening around the same
        tournament).  Under the dkl family the round is restructured: P2
        weight exchange is neighbor-to-neighbor halo traffic instead of
        all-to-coordinator, the coordinator keeps only the O(p) scalar
        imbalance check, and refinement runs SPMD on every rank (phase
        label ``dkl``).
    sfc_curve:
        Curve of the ``sfc`` strategy: ``"morton"`` (default) or
        ``"hilbert"``.  Ignored by the graph-based strategies.
    """

    p: int
    make_mesh: Callable[[], AdaptiveMesh]
    marker: Callable
    rounds: int = 4
    pnr: PNR = field(default_factory=PNR)
    imbalance_trigger: float = 0.05
    coordinator: int = 0
    faults: Optional[FaultPlan] = None
    audit: bool = False
    recover: bool = False
    transport: Optional[str] = None
    partitioner: str = "pnr"
    sfc_curve: str = "morton"


class _CoordinatorGraph:
    """P_C's view of ``G``, built purely from packed P2 weight messages.

    State is struct-of-arrays: a dense vertex-weight vector plus sorted
    packed edge keys (:func:`~repro.pared.weights.edge_keys`) with aligned
    weights — merges and deletions are sorted-int64 array ops, no per-entry
    Python loops.
    """

    def __init__(self, n_roots: int):
        self.n = n_roots
        self.vwts = np.zeros(n_roots)
        self.ekeys = np.empty(0, dtype=np.int64)
        self.ewts = np.empty(0, dtype=np.float64)

    def merge(self, messages) -> None:
        """Apply one round's deltas.  A key in a ``v_dead``/``e_dead``
        array is a *tombstone*: the reporter's owned set no longer contains
        it (the root was handed to another rank, or coarsening collapsed it
        away).  Values are applied first and a tombstone only wins when no
        message of the same batch re-reported the key, so an ownership
        handoff — old owner sending the tombstone, new owner the fresh
        value — merges to the same state in any arrival order.
        """
        fv_ids = np.concatenate([m["v_ids"] for m in messages])
        fv_wts = np.concatenate([m["v_wts"] for m in messages])
        fe_keys = np.concatenate([m["e_keys"] for m in messages])
        fe_wts = np.concatenate([m["e_wts"] for m in messages])
        dv = np.concatenate([m["v_dead"] for m in messages])
        de = np.concatenate([m["e_dead"] for m in messages])
        uids, uw = keep_last(fv_ids, fv_wts)
        self.vwts[uids] = uw
        self.vwts[np.setdiff1d(dv, fv_ids)] = 0.0
        self.ekeys, self.ewts = merge_fresh_values(
            self.ekeys, self.ewts, fe_keys, fe_wts
        )
        dead_e = np.setdiff1d(de, fe_keys)
        if dead_e.size:
            keep = np.isin(self.ekeys, dead_e, invert=True)
            self.ekeys = self.ekeys[keep]
            self.ewts = self.ewts[keep]

    def snapshot(self):
        """Checkpointable copy of the graph state."""
        return self.vwts.copy(), (self.ekeys.copy(), self.ewts.copy())

    @classmethod
    def from_snapshot(cls, n_roots: int, vwts, edges) -> "_CoordinatorGraph":
        g = cls(n_roots)
        g.vwts = np.asarray(vwts, dtype=float).copy()
        ekeys, ewts = edges
        g.ekeys = np.asarray(ekeys, dtype=np.int64).copy()
        g.ewts = np.asarray(ewts, dtype=np.float64).copy()
        return g

    def graph(self) -> WeightedGraph:
        a, b = split_edge_keys(self.ekeys, self.n)
        edges = np.column_stack([a, b])
        return WeightedGraph.from_edges(self.n, edges, self.ewts.copy(), self.vwts.copy())


@dataclass
class _RankState:
    """Everything a rank mutates across rounds (checkpointed wholesale)."""

    amesh: AdaptiveMesh
    dmesh: DistributedMesh
    coord_graph: Optional[_CoordinatorGraph]
    prev_full: Optional[dict]
    history: list
    coordinator: int
    #: the coordinator's repartitioning strategy (None on other ranks);
    #: carries the sfc curve-order cache across rounds
    repart: Optional[object] = None
    #: coarse-root centroids (coordinator only; static for the run)
    root_coords: Optional[np.ndarray] = None


def _pared_setup(comm, cfg: ParedConfig, live) -> _RankState:
    """Initial (or post-wipeout re-initial) partition and distribution."""
    live = sorted(live)
    C = cfg.coordinator if cfg.coordinator in live else live[0]
    amesh = cfg.make_mesh()

    # initial partition at the coordinator (the mesh "is loaded into P_C")
    comm.set_phase("P3")
    group = live if len(live) < comm.size else None
    repart = root_coords = None
    if comm.rank == C:
        repart = make_repartitioner(
            cfg.partitioner, pnr=cfg.pnr, curve=cfg.sfc_curve
        )
        root_coords = coarse_root_centroids(amesh.mesh)
        graph0 = coarse_dual_graph(amesh.mesh)
        if group is None:
            owner0 = repart.initial(graph0, comm.size, coords=root_coords)
        else:
            owner0 = expand_owner(
                repart.initial(graph0, len(live), coords=root_coords), live
            )
    else:
        owner0 = None
    owner = comm.bcast(owner0, root=C, tag=40, ranks=group)
    dmesh = DistributedMesh(comm, amesh, owner, live=live)
    # under dkl the coordinator never assembles G — weights stay
    # distributed and travel neighbor-to-neighbor in P2
    coord_graph = (
        _CoordinatorGraph(amesh.n_roots)
        if comm.rank == C and cfg.partitioner not in _DKL_FAMILY
        else None
    )
    return _RankState(
        amesh=amesh,
        dmesh=dmesh,
        coord_graph=coord_graph,
        prev_full=None,
        history=[],
        coordinator=C,
        repart=repart,
        root_coords=root_coords,
    )


def _pared_round(comm, cfg: ParedConfig, st: _RankState, rnd: int) -> None:
    amesh, dmesh, C = st.amesh, st.dmesh, st.coordinator
    live = dmesh.live
    dkl = cfg.partitioner in _DKL_FAMILY

    # ---- P0: adapt ------------------------------------------------ #
    tick = perf_counter()
    comm.set_phase("P0")
    refine_ids, coarsen_ids = cfg.marker(amesh, rnd)
    my_refine = np.intersect1d(
        np.asarray(refine_ids, dtype=np.int64), dmesh.owned_leaf_ids()
    )
    dmesh.parallel_refine(my_refine)
    my_coarsen = np.intersect1d(
        np.asarray(coarsen_ids, dtype=np.int64), dmesh.owned_leaf_ids()
    )
    dmesh.parallel_coarsen(my_coarsen)

    leaves_before = amesh.leaf_ids().copy()

    # ---- P1: local weights ---------------------------------------- #
    PERF.add("pared.P0", perf_counter() - tick)
    tick = perf_counter()
    comm.set_phase("P1")
    if dkl:
        # no delta machinery: the halo exchange ships each round's full
        # (small, per-neighbor) boundary slices, so there is no baseline
        # to diff against and nothing for a coordinator to accumulate
        graph_struct = coarse_dual_graph(amesh.mesh)
        full = full_weight_report(graph_struct, dmesh.owner, comm.rank)
        st.prev_full = None
    else:
        full = dmesh.local_weight_update(None)
        delta = diff_weight_report(full, st.prev_full)
        st.prev_full = full

    # ---- P2: ship weights ------------------------------------------ #
    PERF.add("pared.P1", perf_counter() - tick)
    tick = perf_counter()
    comm.set_phase("P2")
    if dkl:
        # neighbor-to-neighbor halo exchange; the coordinator's only job
        # is the O(p) scalar imbalance check on gathered load sums
        view = dmesh.exchange_halo_weights(full, graph_struct)
        wsum = float(full["v_wts"].sum())
        wmax_local = float(full["v_wts"].max()) if full["v_wts"].size else 0.0
        gathered = comm.gather(
            (wsum, wmax_local), root=C, tag=42, ranks=dmesh.group
        )
        if comm.rank == C:
            loads = np.zeros(comm.size)
            for r, (s, _) in zip(live, gathered):
                loads[r] = s
            wmax = max(m for _, m in gathered)
            live_loads = loads[live]
            mean = live_loads.sum() / len(live)
            imb = float(live_loads.max() / mean - 1.0) if mean else 0.0
            decision = (loads, float(wmax), imb)
        else:
            decision = None
        loads, wmax, imb = comm.bcast(decision, root=C, tag=43, ranks=dmesh.group)
    else:
        msgs = dmesh.send_weights_to_coordinator(delta, C)

    # ---- P3: repartition & migrate -------------------------------- #
    PERF.add("pared.P2", perf_counter() - tick)
    tick = perf_counter()
    comm.set_phase("P3")
    if dkl:
        if imb > cfg.imbalance_trigger:
            comm.set_phase("dkl")
            dcfg = DKLConfig(
                alpha=cfg.pnr.alpha,
                beta=cfg.pnr.beta,
                seed=cfg.pnr.seed,
                balance_tol=cfg.pnr.balance_tol,
            )
            refine = (
                dkl_ml_refine_comm
                if cfg.partitioner == "dkl-ml"
                else dkl_refine_comm
            )
            assign = refine(
                comm,
                view,
                dmesh.owner,
                np.asarray(loads, dtype=np.float64),
                wmax,
                live,
                dcfg,
                group=dmesh.group,
            )
            comm.set_phase("P3")
        else:
            assign = dmesh.owner.copy()
        # every rank computed the identical assignment; the migration
        # machinery still takes it from the coordinator side unchanged
        new_owner = assign if comm.rank == C else None
    elif comm.rank == C:
        with PERF.span("pared.repartition.serial"):
            st.coord_graph.merge(msgs)
            graph = st.coord_graph.graph()
            loads = np.bincount(
                dmesh.owner, weights=graph.vwts, minlength=comm.size
            )
            live_loads = loads[live]
            mean = live_loads.sum() / len(live)
            imb = float(live_loads.max() / mean - 1.0) if mean else 0.0
            if imb > cfg.imbalance_trigger:
                if len(live) == comm.size:
                    new_owner = st.repart.repartition(
                        graph, comm.size, dmesh.owner, coords=st.root_coords
                    )
                else:
                    new_owner = expand_owner(
                        st.repart.repartition(
                            graph,
                            len(live),
                            compact_owner(dmesh.owner, live),
                            coords=st.root_coords,
                        ),
                        live,
                    )
            else:
                new_owner = dmesh.owner.copy()
    else:
        new_owner = None
        imb = None
    old_owner = dmesh.owner.copy()
    mig = execute_migration(comm, dmesh, new_owner, coordinator=C, extra=imb)
    # the measured imbalance rides the owner broadcast, so the per-round
    # record is replica-identical on every rank (not just P_C)
    imb = mig["extra"]

    # ---- audit: executable invariants of the round ----------------- #
    PERF.add("pared.P3", perf_counter() - tick)
    if cfg.audit:
        tick = perf_counter()
        comm.set_phase("audit")
        check_partition_validity(dmesh.owner, comm.size, amesh.n_roots)
        if len(live) < comm.size:
            check_recovery_partition(dmesh.owner, live, amesh.n_roots)
        check_replica_agreement(comm, dmesh.owner, ranks=dmesh.group)
        owned_all = comm.allgather(
            dmesh.owned_leaf_ids().tolist(), tag=91, ranks=dmesh.group
        )
        check_migration_conservation(leaves_before, amesh.leaf_ids(), owned_all)
        if dkl:
            # every rank's halo view was assembled purely from P2
            # neighbor messages (plus proposal payloads as roots changed
            # hands) — audit it against a brute-force recount of the
            # incident set of the roots it now owns
            check_halo_weights(amesh.mesh, view, dmesh.owner, comm.rank)
        elif comm.rank == C:
            # the coordinator's G was assembled purely from P2
            # messages — auditing it against a brute-force recount
            # verifies the distributed weight protocol end to end
            check_dual_graph_weights(amesh.mesh, graph)
            # the monotone-or-rollback invariant is a property of the
            # Equation-1 KL engine; the mlkl/sfc strategies optimize
            # other objectives and are checked by validity/balance alone
            if imb > cfg.imbalance_trigger and cfg.partitioner == "pnr":
                if len(live) == comm.size:
                    check_monotone_refinement(
                        graph, comm.size, old_owner, dmesh.owner,
                        cfg.pnr.alpha, cfg.pnr.beta,
                    )
                else:
                    check_monotone_refinement(
                        graph,
                        len(live),
                        compact_owner(old_owner, live),
                        compact_owner(dmesh.owner, live),
                        cfg.pnr.alpha,
                        cfg.pnr.beta,
                    )
        PERF.add("pared.audit", perf_counter() - tick)

    # ---- metrics (identical on every replica) ---------------------- #
    fine = leaf_assignment_from_roots(amesh.mesh, dmesh.owner)
    st.history.append(
        {
            "round": rnd,
            "leaves": amesh.n_leaves,
            "cut": cut_size(amesh.mesh, fine),
            "shared_vertices": shared_vertex_count(amesh.mesh, fine),
            "elements_moved": mig["elements_moved"],
            "trees_moved": mig["trees_moved"],
            "imbalance_before": imb,
            "local_load": dmesh.local_load(),
            "owner": dmesh.owner.copy(),
            "old_owner": old_owner,
            "p_live": len(live),
        }
    )


def _save_checkpoint(store: CheckpointStore, rnd: int, st: _RankState) -> None:
    vwts = edges = None
    if st.coord_graph is not None:
        vwts, edges = st.coord_graph.snapshot()
    store.save(
        RoundCheckpoint(
            round=rnd,
            amesh=st.amesh,
            owner=st.dmesh.owner,
            prev_full=st.prev_full,
            history=st.history,
            coordinator=st.coordinator,
            coord_vwts=vwts,
            coord_edges=edges,
        )
    )


def _recover(comm, cfg: ParedConfig, store: CheckpointStore, flush_seen: dict):
    """Survivor-side recovery: flush, agree, restore, re-assign, replay.

    Returns ``(next_round, state_or_None, live)``; a ``None`` state means
    some survivor had no checkpoint, so setup must be redone from scratch.
    """
    comm.set_phase("recovery")
    comm.acknowledge_membership()
    live = comm.live_ranks()
    flush_channels(comm, live, comm.ack_epoch, flush_seen)
    decision = agree_replay_round(comm, live, store.latest_round())
    if decision == NO_CHECKPOINT:
        store.clear()
        return 0, None, live

    ckpt = store.restore(decision)
    store.discard_after(decision)
    C = cfg.coordinator if cfg.coordinator in live else live[0]
    coordinator_changed = C != ckpt.coordinator
    dkl = cfg.partitioner in _DKL_FAMILY
    if coordinator_changed or dkl:
        # a freshly promoted P_C starts with an empty G; every survivor
        # resets its delta baseline so the next round's P2 carries full
        # reports and G is rebuilt from messages alone.  (Under dkl there
        # is no coordinator G at all — every round's P2 rebuilds the halo
        # views from full reports, so recovery has nothing to restore.)
        prev_full = None
        coord_graph = (
            _CoordinatorGraph(ckpt.amesh.n_roots)
            if comm.rank == C and not dkl
            else None
        )
    else:
        prev_full = ckpt.prev_full
        coord_graph = (
            _CoordinatorGraph.from_snapshot(
                ckpt.amesh.n_roots, ckpt.coord_vwts, ckpt.coord_edges
            )
            if comm.rank == C
            else None
        )
    dmesh = DistributedMesh(comm, ckpt.amesh, ckpt.owner, live=live)

    # coordinator-led re-assignment of the dead rank's roots, executed by
    # the ordinary migration machinery; payloads owed by the dead rank are
    # reconstructed from the replica inside execute_migration
    leaves_before = ckpt.amesh.leaf_ids().copy()
    if comm.rank == C:
        graph = (
            coarse_dual_graph(ckpt.amesh.mesh)  # failover bootstrap
            if coordinator_changed or dkl
            else coord_graph.graph()
        )
        new_owner = plan_recovery_assignment(
            graph,
            ckpt.owner,
            live,
            alpha=cfg.pnr.alpha,
            beta=cfg.pnr.beta,
            seed=cfg.pnr.seed,
            balance_tol=cfg.pnr.balance_tol,
        )
    else:
        new_owner = None
    mig = execute_migration(comm, dmesh, new_owner, coordinator=C)

    # recovery invariants: the survivors hold a valid p-1 partition and the
    # leaf multiset is untouched
    check_recovery_partition(dmesh.owner, live, ckpt.amesh.n_roots)
    check_migration_conservation(leaves_before, ckpt.amesh.leaf_ids())
    if cfg.audit:
        check_replica_agreement(comm, dmesh.owner, ranks=live)

    repart = root_coords = None
    if comm.rank == C:
        # a fresh strategy object: the sfc curve-order cache rebuilds
        # deterministically from the replica's (static) root centroids
        repart = make_repartitioner(
            cfg.partitioner, pnr=cfg.pnr, curve=cfg.sfc_curve
        )
        root_coords = coarse_root_centroids(ckpt.amesh.mesh)
    st = _RankState(
        amesh=ckpt.amesh,
        dmesh=dmesh,
        coord_graph=coord_graph,
        prev_full=prev_full,
        history=ckpt.history,
        coordinator=C,
        repart=repart,
        root_coords=root_coords,
    )
    st.history.append(
        {
            "round": ckpt.round,
            "recovery": True,
            "leaves": st.amesh.n_leaves,
            "elements_moved": mig["elements_moved"],
            "trees_moved": mig["trees_moved"],
            "owner": dmesh.owner.copy(),
            "old_owner": ckpt.owner.copy(),
            "p_live": len(live),
            "dead": comm.dead_ranks(),
        }
    )
    return ckpt.round + 1, st, live


def _pared_rank(comm, cfg: ParedConfig):
    recover = cfg.recover and getattr(comm, "recovery_enabled", False)
    store = CheckpointStore(keep=2) if recover else None
    flush_seen: dict = {}
    live = list(range(comm.size))
    st: Optional[_RankState] = None
    rnd = 0
    while True:
        try:
            if st is None:
                st = _pared_setup(comm, cfg, live)
                if recover:
                    _save_checkpoint(store, -1, st)
                rnd = 0
            while rnd < cfg.rounds:
                _pared_round(comm, cfg, st, rnd)
                if recover:
                    _save_checkpoint(store, rnd, st)
                rnd += 1
            if recover:
                # collective commit: a rank may only return once every live
                # rank got through all rounds, so a crash in the final
                # round still finds every survivor reachable for recovery
                comm.set_phase("commit")
                comm.allgather(("commit", rnd), tag=COMMIT_TAG, ranks=st.dmesh.group)
            return st.history
        except PeerCrashed:
            if not recover:
                raise
            while True:
                try:
                    rnd, st, live = _recover(comm, cfg, store, flush_seen)
                    break
                except PeerCrashed:
                    continue  # another death mid-recovery: restart it


def run_pared(cfg: ParedConfig):
    """Run the PARED loop; returns ``(histories, traffic_stats)`` where
    ``histories[r]`` is rank ``r``'s per-round record list (replica metrics
    agree across ranks — enforced by
    :func:`~repro.testing.check_history_agreement`; ``local_load`` differs
    by design).  With ``cfg.recover=True`` a crashed rank's slot is ``None``
    and ``traffic_stats.membership_events`` records the deaths.

    ``traffic_stats.kernel_perf`` holds the wall-clock profile of the run —
    ``{name: (calls, seconds)}`` aggregated over all ranks: the round phases
    (``pared.P0``..``pared.P3``, ``pared.audit``) and the multilevel kernels
    underneath them (``kl.refine``, ``matching.hem``, ``contract``, ...).
    See docs/performance.md."""
    PERF.reset()
    histories, stats = spmd_run(
        cfg.p,
        _pared_rank,
        cfg,
        return_stats=True,
        faults=cfg.faults,
        recover=cfg.recover,
        transport=cfg.transport,
    )
    check_history_agreement(histories)
    stats.kernel_perf = PERF.snapshot()
    return histories, stats
