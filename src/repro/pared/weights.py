"""Packed (struct-of-arrays) weight reports for PARED phases P1/P2.

A weight report is a dict of flat numpy arrays — the wire format the typed
codec (:mod:`repro.runtime.codec`) ships as raw buffers, one frame per
message:

``v_ids`` / ``v_wts``
    Sorted coarse-root ids with their fresh vertex weights.
``e_keys`` / ``e_wts``
    Sorted packed edge keys with their fresh edge weights.  Edge ``(a, b)``
    with ``a < b`` packs to ``a * n_roots + b`` (:func:`edge_keys`), so a
    report is self-contained given ``n_roots`` and every array op —
    diff, dedup, merge — is a sorted-int64 primitive.
``v_dead`` / ``e_dead``
    Tombstones: keys present in the previous report but absent from the
    current one (ownership handoff or coarsening).  A tombstone carries no
    weight; the coordinator zeroes/deletes the entry unless another message
    of the same batch re-reports it (see
    :meth:`~repro.pared.system._CoordinatorGraph.merge`).

All arrays in a report are sorted ascending and duplicate-free.
"""

from __future__ import annotations

import numpy as np

_EMPTY_I = np.empty(0, dtype=np.int64)
_EMPTY_F = np.empty(0, dtype=np.float64)


def edge_keys(a, b, n_roots: int) -> np.ndarray:
    """Pack edge endpoint arrays (``a < b`` elementwise) into scalar keys."""
    return np.asarray(a, dtype=np.int64) * np.int64(n_roots) + np.asarray(
        b, dtype=np.int64
    )


def split_edge_keys(keys, n_roots: int):
    """Inverse of :func:`edge_keys`: ``(a, b)`` endpoint arrays."""
    keys = np.asarray(keys, dtype=np.int64)
    return keys // n_roots, keys % n_roots


def empty_report() -> dict:
    return {
        "v_ids": _EMPTY_I,
        "v_wts": _EMPTY_F,
        "e_keys": _EMPTY_I,
        "e_wts": _EMPTY_F,
        "v_dead": _EMPTY_I,
        "e_dead": _EMPTY_I,
    }


def full_weight_report(graph, owner: np.ndarray, rank: int) -> dict:
    """This rank's complete P1 weight report from the coarse dual graph.

    Vertex weights of owned roots; edge ``(a, b)`` (``a < b``) reported by
    the owner of ``a`` — exactly the ownership rule of the dict-based
    protocol, built with one CSR sweep instead of per-root loops.
    """
    owner = np.asarray(owner, dtype=np.int64)
    n = owner.shape[0]
    v_ids = np.nonzero(owner == rank)[0].astype(np.int64)
    v_wts = graph.vwts[v_ids].astype(np.float64, copy=True)
    counts = np.diff(graph.xadj)
    src = np.repeat(np.arange(n, dtype=np.int64), counts)
    dst = graph.adjncy
    mask = (owner[src] == rank) & (src < dst)
    keys = edge_keys(src[mask], dst[mask], n)
    wts = graph.ewts[mask].astype(np.float64, copy=True)
    order = np.argsort(keys)  # CSR row-major order is already sorted, but
    keys = keys[order]  # don't rely on it: reports promise sorted keys
    wts = wts[order]
    return {
        "v_ids": v_ids,
        "v_wts": v_wts,
        "e_keys": keys,
        "e_wts": wts,
        "v_dead": _EMPTY_I,
        "e_dead": _EMPTY_I,
    }


def _changed(ids, wts, prev_ids, prev_wts):
    """Entries of (ids, wts) that are new or differ from the previous
    report.  Both id arrays sorted ascending."""
    if prev_ids.size == 0:
        return ids, wts
    pos = np.minimum(np.searchsorted(prev_ids, ids), prev_ids.size - 1)
    same = (prev_ids[pos] == ids) & (prev_wts[pos] == wts)
    return ids[~same], wts[~same]


def _gone(prev_ids, ids):
    """Previous keys absent from the current report (→ tombstones)."""
    if prev_ids.size == 0:
        return _EMPTY_I
    return prev_ids[np.isin(prev_ids, ids, invert=True)]


def diff_weight_report(full: dict, prev) -> dict:
    """Delta of ``full`` against the previous full report ``prev``.

    Changed/new entries carry their weights; keys present in ``prev`` but
    gone from ``full`` land in the dead arrays.  ``prev=None`` means no
    baseline: the full report travels verbatim.
    """
    if prev is None:
        return full
    v_ids, v_wts = _changed(full["v_ids"], full["v_wts"], prev["v_ids"], prev["v_wts"])
    e_keys, e_wts = _changed(
        full["e_keys"], full["e_wts"], prev["e_keys"], prev["e_wts"]
    )
    return {
        "v_ids": v_ids,
        "v_wts": v_wts,
        "e_keys": e_keys,
        "e_wts": e_wts,
        "v_dead": _gone(prev["v_ids"], full["v_ids"]),
        "e_dead": _gone(prev["e_keys"], full["e_keys"]),
    }


def keep_last(keys, vals):
    """Deduplicate (keys, vals) keeping the *last* occurrence of each key —
    the array analogue of dict insertion order (later messages win).
    Returns sorted unique int64 keys with their surviving values.

    Always returns freshly owned arrays with canonical dtypes, including on
    the empty path — callers may mutate the result without aliasing the
    input (or the shared module-level empties)."""
    keys = np.asarray(keys, dtype=np.int64)
    vals = np.asarray(vals)
    if keys.size == 0:
        return keys.copy(), vals.copy()
    rev_keys = keys[::-1]
    uniq, first = np.unique(rev_keys, return_index=True)
    return uniq, vals[::-1][first]


def merge_fresh_values(keys, vals, fresh_keys, fresh_vals):
    """Overlay fresh (key, value) pairs onto a sorted key/value store:
    existing keys are overwritten, new keys inserted, order kept sorted.
    Like :func:`keep_last`, never returns a view of its inputs."""
    keys = np.asarray(keys, dtype=np.int64)
    vals = np.asarray(vals)
    fresh_keys, fresh_vals = keep_last(fresh_keys, fresh_vals)
    if fresh_keys.size == 0:
        return keys.copy(), vals.copy()
    cat_keys = np.concatenate([keys, fresh_keys])
    cat_vals = np.concatenate([vals, fresh_vals])
    return keep_last(cat_keys, cat_vals)


def split_report_by_owner(full: dict, owner, n_roots: int, rank: int) -> dict:
    """Split this rank's canonical edge report by the *other* endpoint's
    owner — the per-neighbor halo payloads of the ``dkl`` P2 variant.

    Edge ``(a, b)`` (``a < b``) in ``full`` has ``owner[a] == rank``; the
    entry belongs to neighbor ``t = owner[b]`` when ``t != rank``.  Returns
    ``{t: {"e_keys": ..., "e_wts": ...}}`` with sorted keys per neighbor.
    """
    owner = np.asarray(owner, dtype=np.int64)
    _, b = split_edge_keys(full["e_keys"], n_roots)
    dst_owner = owner[b] if b.size else _EMPTY_I
    out = {}
    for t in np.unique(dst_owner):
        t = int(t)
        if t == rank:
            continue
        pick = dst_owner == t
        out[t] = {
            "e_keys": full["e_keys"][pick],
            "e_wts": full["e_wts"][pick],
        }
    return out
