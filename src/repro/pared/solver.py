"""Distributed FEM solve over the PARED ownership map.

PARED's round begins by *solving the PDE in parallel*: each processor
assembles the stiffness contributions of its owned elements and the global
system is solved with conjugate gradients, communicating only

* **halo accumulation** — after every local mat-vec, contributions at
  *shared* vertices (vertices touched by elements of several ranks — the
  very quantity the paper's partition metric counts) are exchanged with the
  neighboring ranks and summed;
* **reductions** — the CG scalars (dots, norms) via ``allreduce``.

So the communication volume per iteration is exactly proportional to the
shared-vertex count, which is why the paper uses it as the partition-quality
measure — the bench A3 can observe that directly.

The mesh structure is replicated (see :mod:`repro.pared.distmesh`), but the
solver touches only owned-element data and exchanges everything else, so
the message pattern is the real one.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.fem.bc import apply_dirichlet  # noqa: F401  (re-exported convenience)
from repro.fem.p1 import load_vector, stiffness_matrix


class DistributedPoissonSolver:
    """CG solve of ``-Δu = f`` with Dirichlet data over a
    :class:`~repro.pared.distmesh.DistributedMesh`."""

    def __init__(self, dmesh):
        self.dmesh = dmesh
        self.comm = dmesh.comm
        self._setup()

    # ------------------------------------------------------------------ #

    def _setup(self) -> None:
        from repro.pared.halo import vertex_exchange_lists, vertex_touchers

        mesh = self.dmesh.amesh.mesh
        comm = self.comm
        rank = comm.rank
        owners = self.dmesh.leaf_owners()
        cells = mesh.leaf_cells()
        mine = owners == rank
        self.owned_cells = cells[mine]
        self.nv = mesh.n_verts

        # halo analysis: which ranks touch each vertex, and the per-pair
        # shared-vertex exchange lists (sorted on both sides)
        touch = vertex_touchers(mesh, owners)
        self.touched = np.array(
            sorted(v for v, rs in touch.items() if rank in rs), dtype=np.int64
        )
        #: authoritative owner of each touched vertex: the smallest rank
        self.owned_verts = np.array(
            [v for v in self.touched if min(touch[v]) == rank], dtype=np.int64
        )
        self.shared_with = vertex_exchange_lists(mesh, owners, rank)

        self.A_local = stiffness_matrix(mesh.verts, self.owned_cells)
        self.bc_nodes = mesh.boundary_vertices()
        self._bc_mask = np.zeros(self.nv, dtype=bool)
        self._bc_mask[self.bc_nodes] = True

    # ------------------------------------------------------------------ #

    def _exchange_add(self, y: np.ndarray, tag: int) -> None:
        """Accumulate shared-vertex contributions with every neighbor."""
        comm = self.comm
        for q in sorted(self.shared_with):
            comm.send(y[self.shared_with[q]], q, tag=tag)
        for q in sorted(self.shared_with):
            incoming = comm.recv(q, tag=tag)
            y[self.shared_with[q]] += incoming

    def _matvec(self, x: np.ndarray, tag: int) -> np.ndarray:
        y = self.A_local @ x
        self._exchange_add(y, tag)
        # Dirichlet rows act as identity
        y[self._bc_mask] = x[self._bc_mask]
        return y

    def _dot(self, a: np.ndarray, b: np.ndarray) -> float:
        local = float(a[self.owned_verts] @ b[self.owned_verts])
        return float(self.comm.allreduce(local))

    # ------------------------------------------------------------------ #

    def solve(self, f=None, g=None, rtol: float = 1e-8, maxiter: int = 2000):
        """Distributed CG; returns ``(u, iterations)`` with the full nodal
        vector (identical on every rank)."""
        mesh = self.dmesh.amesh.mesh
        comm = self.comm
        verts = mesh.verts

        # assembled RHS: local loads accumulated at shared vertices
        if f is None:
            b = np.zeros(self.nv)
        else:
            b = load_vector(verts, self.owned_cells, f)
        self._exchange_add(b, tag=70)
        u = np.zeros(self.nv)
        if g is not None and self.bc_nodes.size:
            u[self.bc_nodes] = np.asarray(g(verts[self.bc_nodes]))
        b[self._bc_mask] = u[self._bc_mask]

        r = b - self._matvec(u, tag=71)
        r[self._bc_mask] = 0.0
        p = r.copy()
        rs = self._dot(r, r)
        rs0 = max(rs, 1e-300)
        it = 0
        while it < maxiter and rs > rtol * rtol * rs0:
            Ap = self._matvec(p, tag=72 + (it % 7))
            Ap[self._bc_mask] = 0.0
            alpha = rs / max(self._dot(p, Ap), 1e-300)
            u = u + alpha * p
            r = r - alpha * Ap
            rs_new = self._dot(r, r)
            p = r + (rs_new / max(rs, 1e-300)) * p
            rs = rs_new
            it += 1

        # make the full solution available everywhere (post-processing)
        mine = {int(v): float(u[v]) for v in self.owned_verts}
        all_vals = comm.allgather(mine, tag=79)
        full = np.zeros(self.nv)
        for chunk in all_vals:
            for v, val in chunk.items():
                full[v] = val
        full[self._bc_mask] = u[self._bc_mask]
        return full, it
