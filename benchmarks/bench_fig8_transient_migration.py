"""E6 — Figure 8: elements moved per time step of the transient run.

Same run as the Figure 7 bench; this one reports the migration series for
RSB, permuted RSB, and PNR.

Expected shape (Section 10's headline numbers):

* raw RSB moves ~50–100 % of the elements at every step;
* the Biswas–Oliker permutation helps but remains spiky, with peaks of
  tens of percent (paper: >46 % peaks, ~21 % average at p = 32);
* PNR's series is small (paper: 1.2–5.5 % average) and *smooth*, and its
  total movement is a small fraction of permuted RSB's.
"""

from __future__ import annotations

import numpy as np

from _transient import transient_series
from conftest import paper_scale, proc_counts
from repro.experiments import format_series
from repro.experiments.tables import summarize_series


def run_all(plist):
    return {p: transient_series(p) for p in plist}


def test_fig8_transient_migration(benchmark, write_result):
    plist = proc_counts(reduced=[4, 8], paper=[4, 8, 16, 32])
    all_series = benchmark.pedantic(run_all, args=(plist,), rounds=1, iterations=1)
    blocks = []
    for p in plist:
        blocks.append(
            format_series(
                all_series[p],
                "moved",
                every=2,
                title=f"Figure 8 (p={p}): elements moved per step",
            )
        )
        agg = summarize_series(all_series[p], "moved_frac")
        blocks.append(
            "aggregates (fraction of elements moved): "
            + ", ".join(
                f"{name}: mean={v['mean']:.3f} max={v['max']:.3f}"
                for name, v in agg.items()
            )
        )
    write_result("fig8_transient_migration", "\n\n".join(blocks))

    for p in plist:
        series = all_series[p]
        # drop the first step (initial placement, no migration by definition)
        rsb = np.array([r["moved_frac"] for r in series["RSB"][1:]])
        rsb_perm = np.array([r["moved_frac"] for r in series["RSB-perm"][1:]])
        pnr = np.array([r["moved_frac"] for r in series["PNR"][1:]])
        assert rsb.mean() > 0.3, f"p={p}: raw RSB moved only {rsb.mean():.2f}"
        # Reduced-scale meshes (~2k elements) carry coarser tree granularity
        # than the paper's 15–30k meshes, so the absolute PNR fraction is
        # higher; the ordering PNR < permuted-RSB < raw-RSB is the shape
        # under test.
        pnr_cap = 0.08 if paper_scale() else 0.16
        assert pnr.mean() < pnr_cap, f"p={p}: PNR moved {pnr.mean():.2f} on average"
        assert pnr.sum() < 0.75 * rsb_perm.sum(), (
            f"p={p}: PNR total movement ({pnr.sum():.1f}) should be well below "
            f"permuted RSB's ({rsb_perm.sum():.1f})"
        )
        # smoothness: PNR's worst step is bounded, unlike RSB-perm's spikes
        assert pnr.max() < max(0.25, rsb_perm.max()), f"p={p}: PNR spike {pnr.max():.2f}"
        benchmark.extra_info[f"pnr_mean_moved_p{p}"] = float(pnr.mean())
        benchmark.extra_info[f"rsbperm_mean_moved_p{p}"] = float(rsb_perm.mean())
