"""E3b/E4b — the paper's untabulated claims around Figures 4/5:

* "Similar results are obtained for 3D meshes and Multilevel-KL."

Two checks on the Figure 4/5 protocol:

1. **3-D**: the same before/small-refine/after ladder on the tetrahedral
   corner problem — RSB still reshuffles, PNR still moves a few percent.
2. **Multilevel-KL as the baseline**: replacing RSB with Multilevel-KL on
   the fine dual graph leaves the conclusion unchanged.
"""

from __future__ import annotations

import numpy as np

from _protocol import PNRMethod, RSBMethod, run_repartition_protocol
from conftest import paper_scale, proc_counts
from repro.experiments import format_table
from repro.mesh import fine_dual_graph
from repro.partition import multilevel_partition


class MLKLMethod:
    """Fresh Multilevel-KL partition of the fine dual graph each round."""

    name = "MLKL"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._round = 0

    def partition(self, amesh, p):
        graph, _ = fine_dual_graph(amesh.mesh)
        self._round += 1
        return multilevel_partition(graph, p, seed=self.seed + self._round)

    repartition = partition


HEADERS = [
    "size#", "p", "elem t-1", "cut t-1", "elem t", "cut t",
    "C_mig raw", "C_mig perm",
]


def test_fig45_3d(benchmark, write_result):
    plist = proc_counts(reduced=[4, 8], paper=[4, 8, 16, 32])
    n_measure = 2 if not paper_scale() else 4

    def run():
        rsb = run_repartition_protocol(
            lambda: RSBMethod(seed=0), plist, dim=3, n_measure=n_measure
        )
        pnr = run_repartition_protocol(
            lambda: PNRMethod(seed=0), plist, dim=3, n_measure=n_measure
        )
        return rsb, pnr

    rsb_rows, pnr_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "fig45_3d",
        format_table(HEADERS, rsb_rows, title="3D repartitioning: RSB")
        + "\n\n"
        + format_table(HEADERS, pnr_rows, title="3D repartitioning: PNR"),
    )
    rsb_frac = np.array([r[6] / r[4] for r in rsb_rows])
    pnr_frac = np.array([r[6] / r[4] for r in pnr_rows])
    assert rsb_frac.mean() > 0.3, f"3D RSB migration small: {rsb_frac}"
    assert pnr_frac.mean() < 0.15, f"3D PNR migration large: {pnr_frac}"
    assert pnr_frac.mean() < 0.5 * rsb_frac.mean()
    benchmark.extra_info["pnr_mean"] = float(pnr_frac.mean())


def test_fig4_mlkl_baseline(benchmark, write_result):
    plist = proc_counts(reduced=[4, 8], paper=[4, 8, 16, 32])

    def run():
        return run_repartition_protocol(
            lambda: MLKLMethod(seed=0), plist, dim=2, n_measure=2
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "fig4_mlkl_migration",
        format_table(HEADERS, rows, title="Repartitioning with Multilevel-KL (2D)"),
    )
    raw = np.array([r[6] / r[4] for r in rows])
    perm = np.array([r[7] / r[4] for r in rows])
    # "the results for Multilevel-KL are similar" to RSB's Figure 4
    assert raw.mean() > 0.3, f"MLKL raw migration small: {raw}"
    assert np.all(perm <= raw + 1e-12)
    benchmark.extra_info["raw_mean"] = float(raw.mean())
