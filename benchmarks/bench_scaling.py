"""E-extra — scaling study: PNR's cost and migration vs mesh size and p.

Section 4's requirement: "the graph repartitioning must have a low cost
relative to the solution time".  This bench measures, across a ladder of
mesh sizes and processor counts, (a) PNR repartitioning wall time, (b) the
migration fraction, and (c) the time relative to one sparse Poisson solve
on the same mesh — the quantity that has to stay small for the method to be
usable.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import paper_scale
from repro.core import PNR
from repro.experiments import format_table
from repro.fem import CornerLaplace2D, interpolation_error_indicator, mark_top_fraction, solve_poisson
from repro.mesh import AdaptiveMesh, coarse_dual_graph
from repro.partition import graph_migration


def run_scaling(sizes, plist):
    prob = CornerLaplace2D()
    rows = []
    for n in sizes:
        amesh = AdaptiveMesh.unit_square(n)
        for _ in range(2):
            ind = interpolation_error_indicator(amesh, prob.exact)
            amesh.refine(mark_top_fraction(amesh, ind, 0.2))
        t0 = time.perf_counter()
        solve_poisson(amesh, g=prob.dirichlet)
        t_solve = time.perf_counter() - t0
        for p in plist:
            pnr = PNR(seed=0)
            current = pnr.initial_partition(amesh, p)
            ind = interpolation_error_indicator(amesh, prob.exact)
            amesh_leaves_before = amesh.n_leaves
            amesh.refine(mark_top_fraction(amesh, ind, 0.03))
            t0 = time.perf_counter()
            new = pnr.repartition(amesh, p, current)
            t_rep = time.perf_counter() - t0
            g = coarse_dual_graph(amesh.mesh)
            moved = graph_migration(g, current, new)
            rows.append(
                (
                    amesh.n_leaves, p,
                    round(t_rep * 1e3, 1),
                    round(t_solve * 1e3, 1),
                    round(t_rep / t_solve, 2),
                    round(moved / amesh.n_leaves, 4),
                )
            )
    return rows


def test_scaling(benchmark, write_result):
    sizes = [12, 20] if not paper_scale() else [20, 40, 79]
    plist = [4, 8] if not paper_scale() else [8, 32]
    rows = benchmark.pedantic(run_scaling, args=(sizes, plist), rounds=1, iterations=1)
    write_result(
        "scaling",
        format_table(
            ["leaves", "p", "repartition ms", "solve ms", "rep/solve", "moved frac"],
            rows,
            title="Scaling: PNR repartition cost vs one Poisson solve",
        ),
    )
    for leaves, p, t_rep, t_solve, ratio, frac in rows:
        # The absolute rep/solve ratio is skewed by the substitution: the
        # solver is C-backed (scipy LU) while KL is pure Python — a
        # constant-factor mismatch the paper's C implementation would not
        # have.  What must hold is that the ratio stays bounded (no
        # super-linear blowup of the repartitioner).
        assert ratio < 250, f"repartitioning disproportionately slow: {ratio}x solve"
        assert frac < 0.3
    # near-linear complexity: doubling the mesh must not quadruple the
    # repartition time (per processor count)
    for p in plist:
        times = [r[2] for r in rows if r[1] == p]
        sizes_p = [r[0] for r in rows if r[1] == p]
        if len(times) >= 2:
            growth = times[-1] / max(times[0], 1e-9)
            size_growth = sizes_p[-1] / sizes_p[0]
            assert growth < 3.0 * size_growth, (
                f"p={p}: time grew {growth:.1f}x for {size_growth:.1f}x mesh"
            )
    benchmark.extra_info["rows"] = rows
