"""A1 — ablation: the α / β trade-off of Equation 1.

Sweep α (migration penalty) at the paper's β = 0.8, and β (balance
penalty) at the paper's α = 0.1, on one Figure 5-style repartitioning
round.  Expected shape:

* α = 0 reduces PNR to plain partitioning — larger migration, best cut;
  increasing α monotonically (in trend) trades cut for migration until the
  partition freezes;
* too-small β fails to rebalance; β ≈ 0.8 reaches the balance envelope;
  larger β buys nothing further.
"""

from __future__ import annotations

import numpy as np

from conftest import paper_scale
from repro.core import PNR
from repro.experiments import format_table
from repro.experiments.laplace import ladder_pairs
from repro.mesh import coarse_dual_graph
from repro.partition import graph_cut, graph_imbalance, graph_migration


def _setup(p: int, final_fraction: float = 0.05):
    """A Figure 5-like state: the mesh has been partitioned by a PNR chain
    (so the corner region is spread over several subsets, as it would be in
    a live run), then receives one more concentrated refinement that has
    *not* been repartitioned yet."""
    from _protocol import PNRMethod
    from repro.fem import CornerLaplace2D, interpolation_error_indicator, mark_top_fraction

    method = PNRMethod(seed=9)
    last = None
    for phase, k, amesh in ladder_pairs(
        dim=2, n_measure=2, n=(28 if not paper_scale() else 40)
    ):
        last = amesh
        method.partition(amesh, p)
        if phase == "after" and k == 1:
            break
    amesh = last
    current = method.coarse
    ind = interpolation_error_indicator(amesh, CornerLaplace2D().exact)
    amesh.refine(mark_top_fraction(amesh, ind, final_fraction))
    return amesh, current


def run_sweep(p: int):
    amesh, current = _setup(p)
    graph = coarse_dual_graph(amesh.mesh)
    n = amesh.n_leaves
    rows = []
    for alpha in (0.0, 0.01, 0.1, 1.0, 10.0):
        pnr = PNR(alpha=alpha, beta=0.8, seed=9)
        new = pnr.repartition(amesh, p, current)
        rows.append(
            ("alpha", alpha, graph_cut(graph, new),
             graph_migration(graph, current, new) / n,
             graph_imbalance(graph, new, p))
        )
    for beta in (0.0, 0.05, 0.8, 3.2):
        pnr = PNR(alpha=0.1, beta=beta, seed=9)
        new = pnr.repartition(amesh, p, current)
        rows.append(
            ("beta", beta, graph_cut(graph, new),
             graph_migration(graph, current, new) / n,
             graph_imbalance(graph, new, p))
        )
    return rows, graph_imbalance(graph, current, p)


def test_ablation_alpha_beta(benchmark, write_result):
    p = 8
    (rows, imb0) = benchmark.pedantic(run_sweep, args=(p,), rounds=1, iterations=1)
    write_result(
        "ablation_alpha_beta",
        format_table(
            ["swept", "value", "cut", "moved frac", "imbalance"],
            rows,
            title=f"A1: alpha/beta sweep, p={p} (imbalance before repartition: {imb0:.3f})",
        ),
    )
    alpha_rows = [r for r in rows if r[0] == "alpha"]
    # monotone trend: the largest alpha migrates no more than the smallest
    assert alpha_rows[-1][3] <= alpha_rows[0][3] + 1e-9
    # alpha in the paper's range keeps migration small while balancing
    mid = [r for r in alpha_rows if r[1] == 0.1][0]
    assert mid[3] < 0.25 and mid[4] < 0.4
    beta_rows = [r for r in rows if r[0] == "beta"]
    b0 = [r for r in beta_rows if r[1] == 0.0][0]
    b8 = [r for r in beta_rows if r[1] == 0.8][0]
    assert b8[4] <= b0[4] + 1e-9, "beta=0.8 should balance at least as well as beta=0"
    benchmark.extra_info["rows"] = [tuple(map(float, r[1:])) for r in rows]
