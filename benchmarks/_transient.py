"""Shared driver of the Section 10 transient experiment (Figures 7 and 8).

Three methods replay the same adaptation sequence:

* ``RSB``       — fresh recursive spectral bisection of the fine dual graph
                  every step (raw labels);
* ``RSB-perm``  — the same, followed by the Biswas–Oliker subset
                  permutation against the current distribution;
* ``PNR``       — nested repartitioning of the coarse dual graph with
                  α = 0.1, β = 0.8.

Memoized so the Figure 7 (quality) and Figure 8 (migration) benches share
one run per processor count.
"""

from __future__ import annotations

import numpy as np

from repro.core import PNR
from repro.experiments import AssignmentTracker, TransientRunner
from repro.mesh import fine_dual_graph
from repro.partition import (
    apply_permutation,
    minimize_migration_permutation,
    recursive_spectral_bisection,
)


def rsb_method(amesh, p, state):
    graph, _ = fine_dual_graph(amesh.mesh)
    step = 0 if state is None else state
    fine = recursive_spectral_bisection(graph, p, seed=11 + step, refine=True)
    return fine, step + 1


def rsb_perm_method(amesh, p, state):
    graph, _ = fine_dual_graph(amesh.mesh)
    if state is None:
        state = {"tracker": None, "step": 0}
    fine = recursive_spectral_bisection(graph, p, seed=11 + state["step"], refine=True)
    state["step"] += 1
    if state["tracker"] is None:
        state["tracker"] = AssignmentTracker(amesh)
    else:
        inherited = state["tracker"].inherited()
        perm = minimize_migration_permutation(inherited, fine, p)
        fine = apply_permutation(fine, perm)
    state["tracker"].stamp(fine)
    return fine, state


def pnr_method(amesh, p, state):
    if state is None:
        state = {"pnr": PNR(seed=5), "coarse": None}
    if state["coarse"] is None:
        state["coarse"] = state["pnr"].initial_partition(amesh, p)
    else:
        state["coarse"] = state["pnr"].repartition(amesh, p, state["coarse"])
    return state["pnr"].induced_fine(amesh, state["coarse"]), state


METHODS = {"RSB": rsb_method, "RSB-perm": rsb_perm_method, "PNR": pnr_method}

_CACHE: dict = {}


def transient_series(p: int, **kw) -> dict:
    key = (p, tuple(sorted(kw.items())))
    if key not in _CACHE:
        runner = TransientRunner(p, METHODS, **kw)
        _CACHE[key] = runner.run()
    return _CACHE[key]
