"""A3 — system bench: PARED end-to-end over the simulated runtime.

Runs the full solve→estimate→adapt→repartition→migrate loop (Figure 2's
phases) on p ranks, reporting per-phase message/byte traffic and checking
the two system-level properties the paper claims:

* parallel refinement produces the same mesh as serial refinement (the
  replicas' metrics agree across ranks, and the leaf count matches a serial
  replay);
* the coordinator protocol keeps the load balanced while migrating few
  elements per round.
"""

from __future__ import annotations

import numpy as np

from conftest import paper_scale
from repro.core import PNR
from repro.experiments import format_table
from repro.fem import CornerLaplace2D, interpolation_error_indicator, mark_top_fraction
from repro.mesh import AdaptiveMesh
from repro.pared import ParedConfig, run_pared


def run_system(p: int, rounds: int, n: int):
    prob = CornerLaplace2D()

    def marker(amesh, rnd):
        ind = interpolation_error_indicator(amesh, prob.exact)
        return mark_top_fraction(amesh, ind, 0.15), []

    cfg = ParedConfig(
        p=p,
        make_mesh=lambda: AdaptiveMesh.unit_square(n),
        marker=marker,
        rounds=rounds,
        pnr=PNR(seed=4),
        imbalance_trigger=0.05,
    )
    histories, stats = run_pared(cfg)

    # serial replay must land on the identical mesh size
    serial = AdaptiveMesh.unit_square(n)
    for rnd in range(rounds):
        refine_ids, _ = marker(serial, rnd)
        serial.refine(refine_ids)
    return histories, stats, serial.n_leaves


def test_pared_system(benchmark, write_result):
    p = 4 if not paper_scale() else 8
    rounds = 4
    n = 12 if not paper_scale() else 24
    histories, stats, serial_leaves = benchmark.pedantic(
        run_system, args=(p, rounds, n), rounds=1, iterations=1
    )
    hist = histories[0]
    rows = [
        (
            rec["round"], rec["leaves"], rec["cut"], rec["shared_vertices"],
            rec["elements_moved"], rec["trees_moved"],
            round(rec["imbalance_before"], 3),
        )
        for rec in hist
    ]
    phase_rows = [
        (phase, msgs, bts) for phase, (msgs, bts) in stats.phase_report().items()
    ]
    # estimated communication time on the paper-era and modern networks
    from repro.runtime import compare_profiles

    est = compare_profiles(stats)
    est_rows = [
        (name, *(f"{times.get(ph, 0.0)*1e3:.3f}" for ph in ("P0", "P2", "P3")))
        for name, times in est.items()
    ]
    write_result(
        "pared_system",
        format_table(
            ["round", "leaves", "cut", "sharedV", "elems moved", "trees moved", "imb before"],
            rows,
            title=f"A3: PARED rounds (p={p})",
        )
        + "\n\n"
        + format_table(["phase", "messages", "bytes"], phase_rows, title="traffic by phase")
        + "\n\n"
        + format_table(
            ["network", "P0 ms", "P2 ms", "P3 ms"],
            est_rows,
            title="estimated communication time (alpha-beta model)",
        ),
    )

    # parallel == serial refinement
    assert hist[-1]["leaves"] == serial_leaves
    # all replicas agree
    for other in histories[1:]:
        for a, b in zip(hist, other):
            assert a["leaves"] == b["leaves"] and a["cut"] == b["cut"]
            assert np.array_equal(a["owner"], b["owner"])
    # migration stays a modest fraction of the mesh each round
    for rec in hist:
        assert rec["elements_moved"] <= 0.5 * rec["leaves"]
    # phases P0, P2 and P3 must all have produced traffic
    report = stats.phase_report()
    for phase in ("P0", "P2", "P3"):
        assert phase in report and report[phase][0] > 0, f"no traffic in {phase}"
    # the migration exchange is sparse (only non-empty channels carry a
    # message): total P3 traffic — setup + per-round owner broadcasts +
    # payloads — must stay below the dense all-pairs exchange it replaced,
    # whose payload legs alone cost p*(p-1) messages per round
    p3_msgs = report["P3"][0]
    dense_payload_msgs = rounds * p * (p - 1)
    assert p3_msgs < dense_payload_msgs, (
        f"P3 sent {p3_msgs} messages; the dense exchange's payload legs "
        f"alone would send {dense_payload_msgs}"
    )
    benchmark.extra_info["traffic"] = {k: v for k, v in report.items()}
