"""E7 — Section 8: the migration lower-bound model vs measured PNR cost.

Model: a balanced partition receives ``m`` new elements on one processor
``P_o``; rebalancing by moves along the processor-connectivity graph
``H^t`` costs at least ``Σ_j d_{o,j}·(m/p)``, which for a ``√p × √p``
mesh-shaped ``H^t`` with a corner-loaded processor is bounded by
``2·(√p−1)·(p−1)·m/p ≤ 2√p·m`` — *independent of mesh size*.

The bench creates exactly that scenario (refine every leaf of one
processor's subdomain), lets PNR rebalance, and compares the measured
migration — both raw element count and the hop-routed cost on ``H^t`` —
against the model quantities, at two mesh sizes to exercise the
"independent of the mesh size" claim.
"""

from __future__ import annotations

import numpy as np

from conftest import paper_scale
from repro.core import PNR
from repro.core.bounds import (
    mesh_migration_bound,
    migration_lower_bound,
    routed_migration_cost,
)
from repro.experiments import format_table
from repro.mesh import AdaptiveMesh, coarse_dual_graph, processor_graph
from repro.partition import graph_imbalance, graph_migration


def run_bound_experiment(n: int, p: int, extra_levels: int):
    amesh = AdaptiveMesh.unit_square(n)
    for _ in range(extra_levels):
        # uniform growth so both sizes share the scenario's shape
        amesh.uniform_refine(1)
    pnr = PNR(seed=3)
    current = pnr.initial_partition(amesh, p)
    fine_before = pnr.induced_fine(amesh, current)
    h_before = processor_graph(amesh.mesh, fine_before, p)

    # overload one processor: refine all its leaves (m ~ its load)
    n_before = amesh.n_leaves
    overloaded = 0
    leaf_ids = amesh.leaf_ids()
    mine = leaf_ids[fine_before == overloaded]
    amesh.refine(mine)
    m = amesh.n_leaves - n_before

    graph = coarse_dual_graph(amesh.mesh)
    new = pnr.repartition(amesh, p, current)
    moved = graph_migration(graph, current, new)
    routed = routed_migration_cost(h_before, current, new, graph.vwts)
    lower = migration_lower_bound(h_before, overloaded, m)
    model = mesh_migration_bound(p, m)
    return {
        "leaves": amesh.n_leaves,
        "m": m,
        "moved": moved,
        "routed": routed,
        "lower_bound": lower,
        "mesh_bound": model,
        "imbalance_after": graph_imbalance(graph, new, p),
    }


def test_sec8_bound(benchmark, write_result):
    p = 16
    sizes = [(16, 1), (23, 1)] if not paper_scale() else [(23, 1), (23, 2), (32, 2)]

    def run_all():
        return [run_bound_experiment(n, p, lv) for n, lv in sizes]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        (
            r["leaves"], r["m"], r["moved"], round(r["routed"], 1),
            round(r["lower_bound"], 1), round(r["mesh_bound"], 1),
            round(r["moved"] / r["m"], 2), round(r["imbalance_after"], 3),
        )
        for r in results
    ]
    write_result(
        "sec8_bound",
        format_table(
            ["leaves", "m new", "moved", "routed cost", "lower bound",
             "2(sqrt(p)-1)(p-1)m/p", "moved/m", "imb after"],
            rows,
            title=f"Section 8: migration vs model bounds (p={p}, overload one processor)",
        ),
    )
    for r in results:
        # PNR moves each element once (point-to-point), so its element count
        # is on the order of the surplus m, far below the hop-routed bound.
        assert r["moved"] <= 3.0 * r["m"], f"moved {r['moved']} >> m={r['m']}"
        assert r["routed"] <= 3.0 * r["mesh_bound"], "routed cost above model scale"
        assert r["imbalance_after"] < 0.35, "rebalancing failed"
    # mesh-size independence: moved/m ratio stays flat as the mesh grows
    ratios = [r["moved"] / r["m"] for r in results]
    assert max(ratios) < 3.0 * max(min(ratios), 0.1)
    benchmark.extra_info["moved_over_m"] = ratios
