"""Kernel microbenchmarks: throughput of the library's hot paths.

Unlike the experiment benches (one pedantic round regenerating a paper
table), these measure the kernels with proper multi-round timing so
regressions in the refinement, dual-graph, partitioning, KL and assembly
code paths are visible — the "no optimization without measuring" rule the
project follows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fem import CornerLaplace2D, interpolation_error_indicator
from repro.fem.p1 import stiffness_matrix
from repro.graph import fiedler_vector
from repro.graph.contract import contract
from repro.graph.matching import heavy_edge_matching
from repro.mesh import AdaptiveMesh, coarse_dual_graph, fine_dual_graph
from repro.mesh.metrics import shared_vertex_count
from repro.partition import KLConfig, kl_refine, multilevel_partition


@pytest.fixture(scope="module")
def adapted():
    am = AdaptiveMesh.unit_square(20)
    prob = CornerLaplace2D()
    from repro.fem import mark_top_fraction

    for _ in range(3):
        ind = interpolation_error_indicator(am, prob.exact)
        am.refine(mark_top_fraction(am, ind, 0.2))
    return am


@pytest.fixture(scope="module")
def adapted_large():
    """10× the default bench mesh (8192 vs 800 coarse elements) — the
    scale at which the vectorized kernels are demonstrated."""
    am = AdaptiveMesh.unit_square(64)
    prob = CornerLaplace2D()
    from repro.fem import mark_top_fraction

    for _ in range(2):
        ind = interpolation_error_indicator(am, prob.exact)
        am.refine(mark_top_fraction(am, ind, 0.2))
    return am


def test_kernel_refinement(benchmark):
    """Uniform bisection throughput (elements created per call)."""

    def run():
        am = AdaptiveMesh.unit_square(12)
        am.uniform_refine(2)
        return am.n_leaves

    leaves = benchmark(run)
    assert leaves == 288 * 4


def test_kernel_coarse_dual_graph(benchmark, adapted):
    g = benchmark(coarse_dual_graph, adapted.mesh)
    assert g.vwts.sum() == adapted.n_leaves


def test_kernel_fine_dual_graph(benchmark, adapted):
    g, _ = benchmark(fine_dual_graph, adapted.mesh)
    assert g.n_vertices == adapted.n_leaves


def test_kernel_shared_vertices(benchmark, adapted):
    a = (np.arange(adapted.n_leaves) % 8).astype(np.int64)
    sv = benchmark(shared_vertex_count, adapted.mesh, a)
    assert sv > 0


def test_kernel_fiedler(benchmark, adapted):
    g = coarse_dual_graph(adapted.mesh)
    fv = benchmark(fiedler_vector, g, 0)
    assert np.all(np.isfinite(fv))


def test_kernel_multilevel_partition(benchmark, adapted):
    g = coarse_dual_graph(adapted.mesh)
    a = benchmark(multilevel_partition, g, 8, 0)
    assert len(np.unique(a)) == 8


def test_kernel_kl_refine(benchmark, adapted):
    g = coarse_dual_graph(adapted.mesh)
    rng = np.random.default_rng(0)
    a0 = rng.integers(0, 8, g.n_vertices)
    cfg = KLConfig(beta=0.8, balance_tol=0.05, max_passes=2)
    a = benchmark(kl_refine, g, a0, 8, None, cfg)
    assert a.shape == a0.shape


def test_kernel_heavy_edge_matching(benchmark, adapted):
    g = coarse_dual_graph(adapted.mesh)
    m = benchmark(heavy_edge_matching, g, 0)
    assert np.array_equal(m[m], np.arange(g.n_vertices))


def test_kernel_contract(benchmark, adapted):
    g = coarse_dual_graph(adapted.mesh)
    m = heavy_edge_matching(g, seed=0)
    coarse, cmap = benchmark(contract, g, m)
    assert coarse.vwts.sum() == pytest.approx(g.vwts.sum())
    assert cmap.shape == (g.n_vertices,)


def test_kernel_kl_refine_large(benchmark, adapted_large):
    g = coarse_dual_graph(adapted_large.mesh)
    rng = np.random.default_rng(0)
    a0 = rng.integers(0, 8, g.n_vertices)
    cfg = KLConfig(beta=0.8, balance_tol=0.05, max_passes=2)
    a = benchmark(kl_refine, g, a0, 8, None, cfg)
    assert a.shape == a0.shape


def test_kernel_multilevel_partition_large(benchmark, adapted_large):
    g = coarse_dual_graph(adapted_large.mesh)
    a = benchmark(multilevel_partition, g, 8, 0)
    assert len(np.unique(a)) == 8


def test_kernel_stiffness_assembly(benchmark, adapted):
    mesh = adapted.mesh
    A = benchmark(stiffness_matrix, mesh.verts, mesh.leaf_cells())
    assert A.shape[0] == mesh.n_verts


def test_kernel_error_indicator(benchmark, adapted):
    prob = CornerLaplace2D()
    ind = benchmark(interpolation_error_indicator, adapted, prob.exact)
    assert ind.shape[0] == adapted.n_leaves
