"""E2 — Figure 3 (3-D table): Multilevel-KL vs PNR quality on the 3-D
corner-Laplace ladder (Section 6's tetrahedral analog).

Same protocol and expected shape as the 2-D bench; the paper reports the
3-D quality gap to be even smaller than in 2-D.
"""

from __future__ import annotations

import numpy as np

from bench_fig3_quality2d import run_quality_ladder
from conftest import proc_counts
from repro.experiments import format_table


def test_fig3_3d(benchmark, write_result):
    plist = proc_counts(reduced=[4, 8, 16], paper=[4, 8, 16, 32, 64, 128])
    rows, ratios = benchmark.pedantic(
        run_quality_ladder, args=(3, plist), rounds=1, iterations=1
    )
    headers = (
        ["level", "elems"]
        + [f"MLKL p={p}" for p in plist]
        + [f"PNR p={p}" for p in plist]
    )
    write_result(
        "fig3_quality_3d",
        format_table(headers, rows, title="Figure 3 (3D): shared vertices, Multilevel-KL vs PNR"),
    )
    ratios = np.asarray(ratios)
    assert ratios.mean() < 1.5, f"PNR quality degraded on average: {ratios.mean():.2f}x"
    assert ratios.max() < 2.5, f"PNR quality outlier: {ratios.max():.2f}x"
    benchmark.extra_info["mean_quality_ratio"] = float(ratios.mean())
