"""A2 — ablation: PNR's design choices and alternative repartitioners.

On one Figure 5-style round (balanced current partition, small refinement,
repartition), compare:

* **PNR** (inherit coarsest assignment + constrained matching) — the paper;
* **PNR/repartition-coarsest** — modification (a) disabled: the coarsest
  graph is re-partitioned from scratch; expected to migrate much more;
* **PNR/free-matching** — contraction may mix subsets; the inherited
  coarse assignment blurs and migration grows;
* **scratch-remap** — multilevel from scratch + Biswas–Oliker relabel [5];
* **diffusion** — Hu–Blake flow baseline [8]; balances with modest
  migration but no global cut optimization.
"""

from __future__ import annotations

import numpy as np

from bench_ablation_alpha_beta import _setup
from conftest import paper_scale
from repro.core import PNR, diffusion_repartition, scratch_remap_repartition
from repro.experiments import format_table
from repro.mesh import coarse_dual_graph
from repro.partition import graph_cut, graph_imbalance, graph_migration


def run_design_ablation(p: int):
    amesh, current = _setup(p)
    graph = coarse_dual_graph(amesh.mesh)
    n = amesh.n_leaves

    variants = {
        "PNR": PNR(seed=9).repartition(amesh, p, current),
        "PNR/repart-coarsest": PNR(seed=9, repartition_coarsest=True).repartition(
            amesh, p, current
        ),
        "PNR/free-matching": PNR(seed=9, constrain_matching=False).repartition(
            amesh, p, current
        ),
        "scratch-remap": scratch_remap_repartition(graph, p, current, seed=9),
        "diffusion": diffusion_repartition(graph, p, current),
    }
    rows = [
        (
            name,
            graph_cut(graph, a),
            graph_migration(graph, current, a) / n,
            graph_imbalance(graph, a, p),
        )
        for name, a in variants.items()
    ]
    return rows


def test_ablation_design(benchmark, write_result):
    p = 8
    rows = benchmark.pedantic(run_design_ablation, args=(p,), rounds=1, iterations=1)
    write_result(
        "ablation_design",
        format_table(
            ["variant", "cut", "moved frac", "imbalance"],
            rows,
            title=f"A2: PNR design ablation, p={p}",
        ),
    )
    by = {r[0]: r for r in rows}
    # the paper's design choices minimize migration among global methods
    assert by["PNR"][2] <= by["PNR/repart-coarsest"][2] + 1e-9, (
        "inheriting the coarsest assignment should migrate less than "
        "repartitioning it"
    )
    assert by["PNR"][2] < by["scratch-remap"][2] + 1e-9
    # every variant must deliver a usable balance
    for name, cut, mig, imb in rows:
        assert imb < 0.6, f"{name} failed to rebalance (imb={imb:.2f})"
    benchmark.extra_info["rows"] = [(r[0], float(r[1]), float(r[2]), float(r[3])) for r in rows]
