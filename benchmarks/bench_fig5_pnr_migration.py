"""E4 — Figure 5 (table): migration cost of PNR repartitioning.

Identical protocol to the Figure 4 bench but with PNR (α = 0.1, β = 0.8)
partitioning and repartitioning the coarse dual graph.

Expected shape: migration drops to a few percent of the mesh, does not grow
with mesh size, and the Biswas–Oliker permutation no longer helps (PNR's
output is already label-aligned with the current distribution — in Figure 5
the two migration columns are identical).  Cut sizes stay comparable to
RSB's.
"""

from __future__ import annotations

import numpy as np

from _protocol import PNRMethod, RSBMethod, cached_protocol
from conftest import proc_counts
from repro.experiments import format_table


def test_fig5_pnr_migration(benchmark, write_result):
    plist = proc_counts(reduced=[4, 8, 16], paper=[4, 8, 16, 32, 64])
    rows = benchmark.pedantic(
        cached_protocol,
        args=("pnr", lambda: PNRMethod(seed=0), plist),
        rounds=1,
        iterations=1,
    )
    headers = [
        "size#", "p", "elem t-1", "cut t-1", "elem t", "cut t",
        "C_mig raw", "C_mig perm",
    ]
    write_result(
        "fig5_pnr_migration",
        format_table(headers, rows, title="Figure 5: repartitioning with PNR (alpha=0.1, beta=0.8)"),
    )
    pnr_frac = np.array([r[6] / r[4] for r in rows])
    assert pnr_frac.mean() < 0.12, f"PNR migration too large: {pnr_frac}"
    assert pnr_frac.max() < 0.3, f"PNR migration outlier: {pnr_frac}"

    # permutation gains nothing for PNR (already label-aligned)
    gain = np.array([(r[6] - r[7]) / max(r[6], 1) for r in rows])
    assert gain.mean() < 0.25, "permutation should barely help PNR"

    # head-to-head with the Figure 4 RSB numbers (same meshes, same sizes)
    rsb_rows = cached_protocol("rsb", lambda: RSBMethod(seed=0), plist)
    rsb_perm_frac = np.array([r[7] / r[4] for r in rsb_rows])
    assert pnr_frac.mean() < 0.6 * rsb_perm_frac.mean(), (
        f"PNR ({pnr_frac.mean():.3f}) should migrate far less than even "
        f"permuted RSB ({rsb_perm_frac.mean():.3f})"
    )
    # cut quality comparable: PNR within a modest factor of RSB per row
    cut_ratio = np.array(
        [r[5] / max(rr[5], 1) for r, rr in zip(rows, rsb_rows)]
    )
    assert cut_ratio.mean() < 1.6, f"PNR cut degraded vs RSB: {cut_ratio}"
    benchmark.extra_info["pnr_migration_fraction_mean"] = float(pnr_frac.mean())
    benchmark.extra_info["cut_ratio_vs_rsb_mean"] = float(cut_ratio.mean())
