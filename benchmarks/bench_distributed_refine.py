"""Distributed refinement bench: where `dkl` beats the coordinator round.

The question this bench answers is the tentpole claim of the distributed
refinement work: with `--partitioner dkl` the repartitioning stage runs on
every rank (neighbor halo exchange in P2, tournament refinement in P3)
instead of serializing on the coordinator — so the *coordinator-phase
share* of round wall time must drop to zero while the final edge cut stays
within 10% of the coordinator-serial KL reference (`pnr`).

The measured quantity is the fraction of total round-phase seconds
(`pared.P0..P3` + audit, summed over all ranks) spent inside the
`pared.repartition.serial` span — the coordinator's merge + graph build +
KL refinement, which exists only on the `pnr` path.  For `dkl` the span
never opens: the coordinator's whole job is the O(p) scalar imbalance
check, and the refinement cost appears as `dkl.propose`/`dkl.resolve`/
`dkl.rebalance` spans spread across every rank.

Two modes:

* **pytest-benchmark** (reduced scale, 4608-element coarse mesh, p=8):
  the end-to-end `dkl` round timing, compared in CI against the committed
  baseline ``benchmarks/BENCH_dkl.json`` at ``median:25%``; the same test
  asserts the acceptance criteria (coordinator share reduced vs `pnr`,
  cut within 10%) and records the crossover table over p in
  ``extra_info``.  Re-baseline after an intentional change with::

      PYTHONPATH=src python -m pytest benchmarks/bench_distributed_refine.py \
          --benchmark-json=benchmarks/BENCH_dkl.json

* **script** (nightly smoke)::

      PYTHONPATH=src python benchmarks/bench_distributed_refine.py \
          --paper-scale --json results/distributed_refine.json

  runs the paper-scale mesh (135k coarse elements at p=16), prints the
  crossover table and *asserts* the same two criteria.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.core import PNR
from repro.fem import CornerLaplace2D, interpolation_error_indicator, mark_top_fraction
from repro.mesh import AdaptiveMesh
from repro.pared import ParedConfig, run_pared

#: 48x48 unit square -> 2*48*48 = 4608 coarse triangles (CI gate);
#: 260x260 -> 135,200 coarse triangles (the paper's Section 6 scale)
_N = {"reduced": 48, "paper": 260}
_P = {"reduced": 8, "paper": 16}
_ROUNDS = 2
_CUT_TOL = 1.10  # dkl final cut must stay within 10% of coordinator KL

_ROUND_PHASES = ("pared.P0", "pared.P1", "pared.P2", "pared.P3", "pared.audit")


def _cfg(p: int, n: int, rounds: int, partitioner: str) -> ParedConfig:
    prob = CornerLaplace2D()

    def marker(amesh, rnd):
        ind = interpolation_error_indicator(amesh, prob.exact)
        return mark_top_fraction(amesh, ind, 0.15), []

    return ParedConfig(
        p=p,
        make_mesh=lambda: AdaptiveMesh.unit_square(n),
        marker=marker,
        rounds=rounds,
        pnr=PNR(seed=4),
        imbalance_trigger=0.05,
        partitioner=partitioner,
    )


def coordinator_share(perf: dict) -> float:
    """Seconds inside `pared.repartition.serial` as a fraction of all
    round-phase seconds — the serial-bottleneck share this work removes."""
    total = sum(secs for name, (_, secs) in perf.items() if name in _ROUND_PHASES)
    serial = perf.get("pared.repartition.serial", (0, 0.0))[1]
    return serial / total if total else 0.0


def one_run(p: int, n: int, rounds: int, partitioner: str) -> dict:
    t0 = time.perf_counter()
    histories, stats = run_pared(_cfg(p, n, rounds, partitioner))
    seconds = time.perf_counter() - t0
    perf = stats.kernel_perf or {}
    return {
        "partitioner": partitioner,
        "p": p,
        "n_elements": 2 * n * n,
        "seconds": round(seconds, 3),
        "cut": int(histories[0][-1]["cut"]),
        "coord_share": round(coordinator_share(perf), 4),
    }


def crossover_rows(p_list, n: int, rounds: int) -> list:
    """pnr/dkl pairs over p: the coordinator-share column is nonzero on
    every pnr row and structurally zero on every dkl row.  (Summed over
    ranks the *share* need not grow with p on a serialized host — the
    denominator counts all ranks' phase seconds — but the serial span is
    the one term that cannot shrink as ranks become real cores.)"""
    rows = []
    for p in p_list:
        for name in ("pnr", "dkl"):
            rows.append(one_run(p, n, rounds, name))
    return rows


def crossover_table(rows) -> str:
    hdr = (
        f"{'partitioner':<12} {'p':>3} {'elements':>9} {'seconds':>8} "
        f"{'cut':>6} {'coord-share':>12}"
    )
    lines = [hdr, "-" * len(hdr)]
    for r in rows:
        lines.append(
            f"{r['partitioner']:<12} {r['p']:>3} {r['n_elements']:>9} "
            f"{r['seconds']:>8.3f} {r['cut']:>6} {r['coord_share']:>12.4f}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# pytest-benchmark mode: the reduced-scale CI gate
# ---------------------------------------------------------------------- #


def test_dkl_round_reduced(benchmark, write_result):
    n, p = _N["reduced"], _P["reduced"]
    histories, stats = benchmark.pedantic(
        lambda: run_pared(_cfg(p, n, _ROUNDS, "dkl")),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )

    # correctness guard: the bench must never go fast by being wrong
    hist = histories[0]
    assert hist[0]["leaves"] >= 2 * n * n
    for other in histories[1:]:
        for a, b in zip(hist, other):
            assert a["leaves"] == b["leaves"] and a["cut"] == b["cut"]
            assert np.array_equal(a["owner"], b["owner"])

    # the refinement ran distributed: tournament spans present on the
    # perf snapshot, the coordinator-serial span never opened, and the
    # refinement traffic is attributed to its own phase label
    perf = stats.kernel_perf or {}
    assert "dkl.propose" in perf and "dkl.resolve" in perf
    assert "pared.repartition.serial" not in perf
    assert "dkl" in stats.phase_report()

    # acceptance: coordinator-phase share reduced vs pnr at p>=8 with the
    # final cut within 10% of the coordinator-serial KL reference
    pnr = one_run(p, n, _ROUNDS, "pnr")
    dkl_share = coordinator_share(perf)
    assert pnr["coord_share"] > 0.0, "pnr must exercise the serial span"
    assert dkl_share < pnr["coord_share"]
    assert hist[-1]["cut"] <= _CUT_TOL * pnr["cut"], (
        f"dkl cut {hist[-1]['cut']} vs pnr {pnr['cut']}"
    )

    # the crossover table over p, published with the benchmark JSON
    rows = crossover_rows((2, 4), n, _ROUNDS) + [
        pnr,
        {
            "partitioner": "dkl",
            "p": p,
            "n_elements": 2 * n * n,
            "seconds": None,  # the benched timing above, see stats JSON
            "cut": int(hist[-1]["cut"]),
            "coord_share": round(dkl_share, 4),
        },
    ]
    benchmark.extra_info["crossover"] = rows
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    write_result(
        "distributed_refine",
        crossover_table([r for r in rows if r["seconds"] is not None]),
    )


# ---------------------------------------------------------------------- #
# script mode: the paper-scale nightly smoke
# ---------------------------------------------------------------------- #


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--paper-scale", action="store_true",
                    help="run the 135k-element scale (the nightly smoke)")
    ap.add_argument("--p", type=int, nargs="+", default=None,
                    help="processor counts for the crossover table")
    ap.add_argument("--json", metavar="PATH",
                    help="write the rows as a JSON artifact")
    args = ap.parse_args(argv)

    scale = "paper" if args.paper_scale else "reduced"
    n = _N[scale]
    p_gate = _P[scale]
    p_list = args.p or sorted({2, max(2, p_gate // 2), p_gate})
    rows = crossover_rows(p_list, n, _ROUNDS)

    print()
    print(crossover_table(rows))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(rows, fh, indent=2)
        print(f"[written to {args.json}]")

    by = {(r["partitioner"], r["p"]): r for r in rows}
    pnr, dkl = by[("pnr", p_gate)], by[("dkl", p_gate)]
    print(
        f"\ncoordinator share at p={p_gate}: pnr {pnr['coord_share']:.4f} "
        f"-> dkl {dkl['coord_share']:.4f}; cut {pnr['cut']} -> {dkl['cut']}"
    )
    if not dkl["coord_share"] < pnr["coord_share"]:
        print("FAIL: dkl must reduce the coordinator-phase share",
              file=sys.stderr)
        return 1
    if dkl["cut"] > _CUT_TOL * pnr["cut"]:
        print(f"FAIL: dkl cut {dkl['cut']} above {_CUT_TOL}x pnr {pnr['cut']}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
