"""Distributed refinement bench: where `dkl` beats the coordinator round.

The question this bench answers is the tentpole claim of the distributed
refinement work: with `--partitioner dkl` the repartitioning stage runs on
every rank (neighbor halo exchange in P2, tournament refinement in P3)
instead of serializing on the coordinator — so the *coordinator-phase
share* of round wall time must drop to zero while the final edge cut stays
within 10% of the coordinator-serial KL reference (`pnr`).

The measured quantity is the fraction of total round-phase seconds
(`pared.P0..P3` + audit, summed over all ranks) spent inside the
`pared.repartition.serial` span — the coordinator's merge + graph build +
KL refinement, which exists only on the `pnr` path.  For `dkl` the span
never opens: the coordinator's whole job is the O(p) scalar imbalance
check, and the refinement cost appears as `dkl.propose`/`dkl.resolve`/
`dkl.rebalance` spans spread across every rank.

Two modes:

* **pytest-benchmark** (reduced scale, 4608-element coarse mesh, p=8):
  the end-to-end `dkl` round timing, compared in CI against the committed
  baseline ``benchmarks/BENCH_dkl.json`` at ``median:25%``; the same test
  asserts the acceptance criteria (coordinator share reduced vs `pnr`,
  `dkl` cut within 10% of `pnr`, `dkl-ml` cut no worse than flat `dkl`
  and inside the same tolerance, per-round proposal bytes on the ledger)
  and records the crossover table over p in ``extra_info``.  Two sibling
  tests cover the wire and wall-time claims: the packed proposal frame
  must encode smaller than the old codec-dict format, and on runners with
  >= 4 cores the process-backend `dkl` round must beat `pnr` on wall time
  (skipped with a ``::notice`` elsewhere).  Re-baseline after an
  intentional change with::

      PYTHONPATH=src python -m pytest benchmarks/bench_distributed_refine.py \
          --benchmark-json=benchmarks/BENCH_dkl.json

* **script** (nightly smoke)::

      PYTHONPATH=src python benchmarks/bench_distributed_refine.py \
          --paper-scale --json results/distributed_refine.json

  runs the paper-scale mesh (135k coarse elements at p=16), prints the
  pnr/dkl/dkl-ml crossover table and *asserts* the same criteria.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core import PNR
from repro.fem import CornerLaplace2D, interpolation_error_indicator, mark_top_fraction
from repro.mesh import AdaptiveMesh
from repro.pared import ParedConfig, run_pared
from repro.runtime.envflags import effective_cpu_count

#: 48x48 unit square -> 2*48*48 = 4608 coarse triangles (CI gate);
#: 260x260 -> 135,200 coarse triangles (the paper's Section 6 scale)
_N = {"reduced": 48, "paper": 260}
_P = {"reduced": 8, "paper": 16}
_ROUNDS = 2
_CUT_TOL = 1.10  # dkl final cut must stay within 10% of coordinator KL

_ROUND_PHASES = ("pared.P0", "pared.P1", "pared.P2", "pared.P3", "pared.audit")


def _cfg(
    p: int, n: int, rounds: int, partitioner: str, transport=None
) -> ParedConfig:
    prob = CornerLaplace2D()

    def marker(amesh, rnd):
        ind = interpolation_error_indicator(amesh, prob.exact)
        return mark_top_fraction(amesh, ind, 0.15), []

    return ParedConfig(
        p=p,
        make_mesh=lambda: AdaptiveMesh.unit_square(n),
        marker=marker,
        rounds=rounds,
        pnr=PNR(seed=4),
        imbalance_trigger=0.05,
        partitioner=partitioner,
        transport=transport,
    )


def coordinator_share(perf: dict) -> float:
    """Seconds inside `pared.repartition.serial` as a fraction of all
    round-phase seconds — the serial-bottleneck share this work removes."""
    total = sum(secs for name, (_, secs) in perf.items() if name in _ROUND_PHASES)
    serial = perf.get("pared.repartition.serial", (0, 0.0))[1]
    return serial / total if total else 0.0


def one_run(p: int, n: int, rounds: int, partitioner: str) -> dict:
    t0 = time.perf_counter()
    histories, stats = run_pared(_cfg(p, n, rounds, partitioner))
    seconds = time.perf_counter() - t0
    perf = stats.kernel_perf or {}
    return {
        "partitioner": partitioner,
        "p": p,
        "n_elements": 2 * n * n,
        "seconds": round(seconds, 3),
        "cut": int(histories[0][-1]["cut"]),
        "coord_share": round(coordinator_share(perf), 4),
    }


def crossover_rows(p_list, n: int, rounds: int) -> list:
    """pnr/dkl/dkl-ml triplets over p: the coordinator-share column is
    nonzero on every pnr row and structurally zero on every dkl-family
    row.  (Summed over ranks the *share* need not grow with p on a
    serialized host — the denominator counts all ranks' phase seconds —
    but the serial span is the one term that cannot shrink as ranks
    become real cores.)"""
    rows = []
    for p in p_list:
        for name in ("pnr", "dkl", "dkl-ml"):
            rows.append(one_run(p, n, rounds, name))
    return rows


def crossover_table(rows) -> str:
    hdr = (
        f"{'partitioner':<12} {'p':>3} {'elements':>9} {'seconds':>8} "
        f"{'cut':>6} {'coord-share':>12}"
    )
    lines = [hdr, "-" * len(hdr)]
    for r in rows:
        lines.append(
            f"{r['partitioner']:<12} {r['p']:>3} {r['n_elements']:>9} "
            f"{r['seconds']:>8.3f} {r['cut']:>6} {r['coord_share']:>12.4f}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# pytest-benchmark mode: the reduced-scale CI gate
# ---------------------------------------------------------------------- #


def test_dkl_round_reduced(benchmark, write_result):
    n, p = _N["reduced"], _P["reduced"]
    histories, stats = benchmark.pedantic(
        lambda: run_pared(_cfg(p, n, _ROUNDS, "dkl")),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )

    # correctness guard: the bench must never go fast by being wrong
    hist = histories[0]
    assert hist[0]["leaves"] >= 2 * n * n
    for other in histories[1:]:
        for a, b in zip(hist, other):
            assert a["leaves"] == b["leaves"] and a["cut"] == b["cut"]
            assert np.array_equal(a["owner"], b["owner"])

    # the refinement ran distributed: tournament spans present on the
    # perf snapshot (including the overlapped proposal exchange), the
    # coordinator-serial span never opened, the refinement traffic is
    # attributed to its own phase label, and every proposal round's wire
    # bytes landed on the per-round ledger
    perf = stats.kernel_perf or {}
    assert "dkl.propose" in perf and "dkl.resolve" in perf
    assert "dkl.exchange" in perf
    assert "pared.repartition.serial" not in perf
    assert "dkl" in stats.phase_report()
    proposal_bytes = stats.round_profile("dkl.proposals")
    assert proposal_bytes and sum(proposal_bytes) > 0

    # acceptance: coordinator-phase share reduced vs pnr at p>=8 with the
    # final cut within 10% of the coordinator-serial KL reference, and
    # the multilevel flavour at least as good as flat dkl while staying
    # inside the same pnr tolerance
    pnr = one_run(p, n, _ROUNDS, "pnr")
    dkl_ml = one_run(p, n, _ROUNDS, "dkl-ml")
    dkl_share = coordinator_share(perf)
    assert pnr["coord_share"] > 0.0, "pnr must exercise the serial span"
    assert dkl_share < pnr["coord_share"]
    assert hist[-1]["cut"] <= _CUT_TOL * pnr["cut"], (
        f"dkl cut {hist[-1]['cut']} vs pnr {pnr['cut']}"
    )
    assert dkl_ml["coord_share"] == 0.0
    assert dkl_ml["cut"] <= hist[-1]["cut"], (
        f"dkl-ml cut {dkl_ml['cut']} must not lose to flat dkl "
        f"{hist[-1]['cut']}"
    )
    assert dkl_ml["cut"] <= _CUT_TOL * pnr["cut"], (
        f"dkl-ml cut {dkl_ml['cut']} vs pnr {pnr['cut']}"
    )

    # the crossover table over p, published with the benchmark JSON
    rows = crossover_rows((2, 4), n, _ROUNDS) + [
        pnr,
        dkl_ml,
        {
            "partitioner": "dkl",
            "p": p,
            "n_elements": 2 * n * n,
            "seconds": None,  # the benched timing above, see stats JSON
            "cut": int(hist[-1]["cut"]),
            "coord_share": round(dkl_share, 4),
        },
    ]
    benchmark.extra_info["proposal_bytes_per_round"] = proposal_bytes
    benchmark.extra_info["crossover"] = rows
    benchmark.extra_info["cpu_count"] = effective_cpu_count()
    write_result(
        "distributed_refine",
        crossover_table([r for r in rows if r["seconds"] is not None]),
    )


def test_proposal_bytes_shrink_vs_codec_dict(write_result):
    """The packed struct-of-arrays frame must beat the dict-of-arrays the
    exchange used to ship, on real first-round proposals at bench scale —
    and the live run must account those bytes per round."""
    import numpy as np

    from repro.partition.distributed import (
        DKLConfig,
        PartView,
        _propose_moves,
        pack_proposal_frame,
    )
    from repro.runtime.codec import encode

    # bench-scale grid, striped start: every part has boundary moves
    side = _N["reduced"]
    p = _P["reduced"]
    nv = side * side
    ii, jj = np.divmod(np.arange(nv), side)
    edges = []
    right = np.flatnonzero(jj < side - 1)
    down = np.flatnonzero(ii < side - 1)
    edges = np.concatenate(
        [
            np.column_stack([right, right + 1]),
            np.column_stack([down, down + side]),
        ]
    )
    from repro.graph.csr import WeightedGraph

    g = WeightedGraph.from_edges(nv, edges)
    # seeded random start: scattered parts, so every part has plenty of
    # strictly positive boundary moves to propose
    assign = np.random.default_rng(0).integers(0, p, size=nv).astype(np.int64)
    cfg = DKLConfig()
    mean = g.vwts.sum() / p
    band = max(cfg.balance_tol * mean, 0.5 * float(g.vwts.max()))
    loads = np.bincount(assign, weights=g.vwts, minlength=p)
    locked = np.zeros(nv, dtype=bool)
    packed_total = 0
    dict_total = 0
    for part in range(p):
        view = PartView.from_graph(g, part, assign)
        prop = _propose_moves(
            view, assign, assign, loads, list(range(p)), cfg,
            mean + band, mean - band, locked,
        )
        if prop is None:
            continue
        packed_total += len(encode(pack_proposal_frame(prop)))
        dict_total += len(encode(prop))
    assert packed_total > 0, "striped start must yield proposals"
    assert packed_total < dict_total, (
        f"packed frame {packed_total}B must shrink vs dict {dict_total}B"
    )
    write_result(
        "dkl_proposal_bytes",
        f"first-round proposal bytes at p={p}, {2 * side * side} elements:\n"
        f"codec dict {dict_total:>9}\n"
        f"packed     {packed_total:>9}  "
        f"({packed_total / dict_total:.2%} of dict)",
    )


def test_dkl_beats_pnr_wall_time_multicore(write_result):
    """The wall-time claim (ROADMAP: 'the structural claim is gated but
    the wall-time win is still undemonstrated on 1-core runners'): with
    >= 4 real cores and one OS process per rank, removing the
    coordinator-serial span must show up as lower end-to-end wall time
    for dkl than pnr."""
    ncpu = effective_cpu_count()
    if ncpu < 4:
        print(
            f"::notice title=dkl wall-time leg skipped::runner reports "
            f"{ncpu} usable core(s) (<4); the dkl-vs-pnr wall-time comparison "
            f"needs truly parallel ranks and was not gated on this run"
        )
        import pytest

        pytest.skip(f"wall-time leg needs >=4 cores, have {ncpu}")
    n, p = _N["reduced"], 4
    seconds = {}
    for name in ("pnr", "dkl"):
        samples = []
        for _ in range(3):
            t0 = time.perf_counter()
            run_pared(_cfg(p, n, _ROUNDS, name, transport="process"))
            samples.append(time.perf_counter() - t0)
        seconds[name] = sorted(samples)[1]  # median of 3
    write_result(
        "dkl_wall_time",
        f"process-backend wall time at p={p} ({ncpu} cores): "
        f"pnr {seconds['pnr']:.3f}s, dkl {seconds['dkl']:.3f}s",
    )
    assert seconds["dkl"] < seconds["pnr"], (
        f"dkl {seconds['dkl']:.3f}s must beat pnr {seconds['pnr']:.3f}s "
        f"on a {ncpu}-core runner"
    )


# ---------------------------------------------------------------------- #
# script mode: the paper-scale nightly smoke
# ---------------------------------------------------------------------- #


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--paper-scale", action="store_true",
                    help="run the 135k-element scale (the nightly smoke)")
    ap.add_argument("--p", type=int, nargs="+", default=None,
                    help="processor counts for the crossover table")
    ap.add_argument("--json", metavar="PATH",
                    help="write the rows as a JSON artifact")
    args = ap.parse_args(argv)

    scale = "paper" if args.paper_scale else "reduced"
    n = _N[scale]
    p_gate = _P[scale]
    p_list = args.p or sorted({2, max(2, p_gate // 2), p_gate})
    rows = crossover_rows(p_list, n, _ROUNDS)

    print()
    print(crossover_table(rows))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(rows, fh, indent=2)
        print(f"[written to {args.json}]")

    by = {(r["partitioner"], r["p"]): r for r in rows}
    pnr, dkl = by[("pnr", p_gate)], by[("dkl", p_gate)]
    ml = by.get(("dkl-ml", p_gate))
    print(
        f"\ncoordinator share at p={p_gate}: pnr {pnr['coord_share']:.4f} "
        f"-> dkl {dkl['coord_share']:.4f}; cut {pnr['cut']} -> {dkl['cut']}"
        + (f" (dkl-ml {ml['cut']})" if ml else "")
    )
    if not dkl["coord_share"] < pnr["coord_share"]:
        print("FAIL: dkl must reduce the coordinator-phase share",
              file=sys.stderr)
        return 1
    if dkl["cut"] > _CUT_TOL * pnr["cut"]:
        print(f"FAIL: dkl cut {dkl['cut']} above {_CUT_TOL}x pnr {pnr['cut']}",
              file=sys.stderr)
        return 1
    if ml is not None:
        if ml["cut"] > dkl["cut"]:
            print(f"FAIL: dkl-ml cut {ml['cut']} must not lose to flat "
                  f"dkl {dkl['cut']}", file=sys.stderr)
            return 1
        if ml["cut"] > _CUT_TOL * pnr["cut"]:
            print(f"FAIL: dkl-ml cut {ml['cut']} above {_CUT_TOL}x pnr "
                  f"{pnr['cut']}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
