"""E5 — Figure 7: partition quality over the transient run.

The moving-peak Poisson problem is tracked for many time steps; after each
adaptation the mesh is repartitioned by RSB and by PNR.  Figure 7 plots the
number of shared vertices per step for several processor counts.

Expected shape: although PNR is a local (incremental) heuristic, its
shared-vertex series stays close to RSB's for the whole run — the quality
does **not** deteriorate over time.
"""

from __future__ import annotations

import numpy as np

from _transient import transient_series
from conftest import proc_counts
from repro.experiments import format_series


def run_all(plist):
    return {p: transient_series(p) for p in plist}


def test_fig7_transient_quality(benchmark, write_result):
    plist = proc_counts(reduced=[4, 8], paper=[4, 8, 16, 32])
    all_series = benchmark.pedantic(run_all, args=(plist,), rounds=1, iterations=1)
    blocks = []
    for p in plist:
        blocks.append(
            format_series(
                all_series[p],
                "shared_vertices",
                every=2,
                title=f"Figure 7 (p={p}): shared vertices per step",
            )
        )
    write_result("fig7_transient_quality", "\n\n".join(blocks))

    for p in plist:
        series = all_series[p]
        sv_rsb = np.array([r["shared_vertices"] for r in series["RSB"]])
        sv_pnr = np.array([r["shared_vertices"] for r in series["PNR"]])
        ratio = sv_pnr / np.maximum(sv_rsb, 1)
        assert ratio.mean() < 1.6, f"p={p}: PNR quality {ratio.mean():.2f}x RSB"
        # no deterioration over time: the last-third mean ratio is not much
        # worse than the first-third mean ratio
        k = len(ratio) // 3
        assert ratio[-k:].mean() < ratio[:k].mean() * 1.5 + 0.3, (
            f"p={p}: PNR quality deteriorates over time "
            f"({ratio[:k].mean():.2f} -> {ratio[-k:].mean():.2f})"
        )
        benchmark.extra_info[f"quality_ratio_p{p}"] = float(ratio.mean())
