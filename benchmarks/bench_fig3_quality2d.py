"""E1 — Figure 3 (2-D table): partition quality of Multilevel-KL vs PNR.

Paper protocol (Section 6): adaptively refine the 2-D corner-Laplace mesh
level by level; after each refinement partition the adapted mesh with
(a) Multilevel-KL on the fine dual graph and (b) PNR on the weighted coarse
dual graph (α = 0.1); report the number of shared vertices for p subsets.

Expected shape: PNR's shared-vertex counts track Multilevel-KL's within a
small factor at every level — partitioning the coarse graph loses little
quality (the point of Section 6 and Theorem 6.1).
"""

from __future__ import annotations

import numpy as np

from conftest import paper_scale, proc_counts
from repro.core import PNR
from repro.experiments import format_table, laplace_ladder
from repro.mesh import fine_dual_graph, shared_vertex_count
from repro.partition import multilevel_partition


def run_quality_ladder(dim: int, plist):
    rows = []
    ratios = []
    pnr_state = {p: None for p in plist}
    pnr = PNR(seed=1)
    for level, amesh in laplace_ladder(dim=dim):
        mesh = amesh.mesh
        fine_graph, _ = fine_dual_graph(mesh)
        row_ml = []
        row_pnr = []
        for p in plist:
            aml = multilevel_partition(fine_graph, p, seed=1)
            sv_ml = shared_vertex_count(mesh, aml)
            if pnr_state[p] is None:
                coarse = pnr.initial_partition(amesh, p)
            else:
                coarse = pnr.repartition(amesh, p, pnr_state[p])
            pnr_state[p] = coarse
            sv_pnr = shared_vertex_count(mesh, pnr.induced_fine(amesh, coarse))
            row_ml.append(sv_ml)
            row_pnr.append(sv_pnr)
            if sv_ml > 0:
                ratios.append(sv_pnr / sv_ml)
        rows.append((level, amesh.n_leaves, *row_ml, *row_pnr))
    return rows, ratios


def test_fig3_2d(benchmark, write_result):
    plist = proc_counts(reduced=[4, 8, 16], paper=[4, 8, 16, 32, 64, 128])
    rows, ratios = benchmark.pedantic(
        run_quality_ladder, args=(2, plist), rounds=1, iterations=1
    )
    headers = (
        ["level", "elems"]
        + [f"MLKL p={p}" for p in plist]
        + [f"PNR p={p}" for p in plist]
    )
    write_result(
        "fig3_quality_2d",
        format_table(headers, rows, title="Figure 3 (2D): shared vertices, Multilevel-KL vs PNR"),
    )
    ratios = np.asarray(ratios)
    # Paper: "PNR provides very high quality partitions" — same ballpark as
    # Multilevel-KL.  Allow generous slack for the reduced scale.
    assert ratios.mean() < 1.5, f"PNR quality degraded on average: {ratios.mean():.2f}x"
    assert ratios.max() < 2.5, f"PNR quality outlier: {ratios.max():.2f}x"
    benchmark.extra_info["mean_quality_ratio"] = float(ratios.mean())
