"""E8 — Theorem 6.1: the price of respecting coarse boundaries.

Refine every coarse element uniformly to depth ``d`` (the theorem's
hypothesis), partition the *fine* mesh with RSB, then project the partition
onto coarse-element boundaries.  The theorem bounds the projected cut by
``9C`` and the per-processor load increase by ``(p−1)d²``; the bench
measures both at several depths.
"""

from __future__ import annotations

from conftest import paper_scale
from repro.core import projection_report
from repro.experiments import format_table
from repro.mesh import AdaptiveMesh, fine_dual_graph
from repro.partition import recursive_spectral_bisection


def run_projection(n: int, depths, p: int):
    rows = []
    for d in depths:
        amesh = AdaptiveMesh.unit_square(n)
        amesh.uniform_refine(d)
        graph, _ = fine_dual_graph(amesh.mesh)
        fine = recursive_spectral_bisection(graph, p, seed=7, refine=True)
        rep = projection_report(amesh, fine, p)
        rows.append(
            (
                d, amesh.n_leaves, rep["cut_before"], rep["cut_after"],
                round(rep["expansion"], 2), rep["max_load_increase"],
                rep["balance_additive_bound"],
            )
        )
    return rows


def test_thm61_projection(benchmark, write_result):
    p = 8
    n = 8 if not paper_scale() else 16
    depths = [2, 4] if not paper_scale() else [2, 4, 6]
    rows = benchmark.pedantic(run_projection, args=(n, depths, p), rounds=1, iterations=1)
    write_result(
        "thm61_projection",
        format_table(
            ["depth d", "leaves", "cut fine", "cut projected", "expansion",
             "max load increase", "(p-1)d^2 bound"],
            rows,
            title=f"Theorem 6.1: projecting an RSB fine partition to coarse boundaries (p={p})",
        ),
    )
    for d, leaves, cb, ca, exp, load_inc, bound in rows:
        assert exp <= 9.0, f"cut expansion {exp} violates the 9C bound"
        # the (p-1)d^2 additive bound uses the *bisection* depth; our depth-d
        # uniform refinement corresponds to 2^d leaves per coarse element,
        # i.e. the theorem's uniform refinement with d_paper = d; the bound
        # scales as the number of elements along a coarse boundary.
        assert load_inc <= (p - 1) * (2**d), (
            f"load increase {load_inc} above the granularity scale "
            f"(p-1)*2^d = {(p-1)*2**d}"
        )
    benchmark.extra_info["expansions"] = [r[4] for r in rows]
