"""Transport microbenchmark: socketpair vs shared-memory ring.

Round-trip latency and bytes *copied* for one p=2 ping-pong at three
frame sizes — 1 KiB (ring copy-out regime), 1 MiB (ring zero-copy
regime) and 32 MiB (over ``max_frame``: the shm backend must spill to
the socket).  The committed ``results/transport_overhead.txt`` is the
repo's record of what the ring actually buys on the data plane: the
``copied_bytes`` column is deterministic (it counts memcpy crossings,
not time) and is asserted; the latency columns are informative and
depend on the host.

Run directly for quick numbers::

    PYTHONPATH=src python -m pytest benchmarks/bench_transport.py -q
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.runtime.envflags import effective_cpu_count
from repro.runtime.simmpi import spmd_run

#: (label, payload elements) — int64, so bytes = 8 * elements
_SIZES = (
    ("1KB", 128),
    ("1MB", 128 << 10),
    ("32MB", 4 << 20),
)
_REPS = {"1KB": 40, "1MB": 10, "32MB": 3}


def _pingpong(comm, n, reps):
    """Rank 0 sends, rank 1 echoes the first element back; returns wall
    seconds per round trip measured on rank 0."""
    payload = np.arange(n, dtype=np.int64)
    comm.barrier()
    t0 = perf_counter()
    for r in range(reps):
        if comm.rank == 0:
            comm.send(payload, 1, tag=40 + r)
            comm.recv(1, tag=80 + r, timeout=120.0)
        else:
            arr = comm.recv(0, tag=40 + r, timeout=120.0)
            comm.send(int(arr[0]), 0, tag=80 + r)
    return (perf_counter() - t0) / reps


def _measure(backend):
    rows = {}
    for label, n in _SIZES:
        reps = _REPS[label]
        res, stats = spmd_run(
            2, _pingpong, n, reps, transport=backend, return_stats=True
        )
        rows[label] = {
            "seconds_per_roundtrip": res[0],
            "wire": dict(stats.wire_report()),
        }
    return rows


def test_transport_overhead(write_result):
    thread = _measure("thread")
    process = _measure("process")
    shm = _measure("shm")

    # the copy ledger is deterministic; assert the regimes
    for label, n in _SIZES:
        nbytes = 8 * n
        shm_wire = shm[label]["wire"]
        if label == "32MB":
            # over max_frame: every payload frame spills to the socket
            assert shm_wire.get("spill_frames", 0) > 0, shm_wire
        else:
            assert shm_wire.get("spill_frames", 0) == 0, shm_wire
            assert shm_wire.get("ring_bytes", 0) > nbytes, shm_wire
        # the process backend copies every payload byte; the shm ring
        # copies none of the zero-copy frames (1 MiB rides as views)
        assert process[label]["wire"]["copied_bytes"] >= nbytes
    assert shm["1MB"]["wire"]["copied_bytes"] < shm["1MB"]["wire"]["ring_bytes"]

    header = (
        f"{'frame':>6} | {'thread us/rt':>12} | {'process us/rt':>13} "
        f"| {'shm us/rt':>10} | {'process copied':>14} | {'shm copied':>10}"
    )
    lines = [
        "transport ping-pong overhead, p=2 "
        f"({effective_cpu_count()} usable core(s))",
        header,
        "-" * len(header),
    ]
    for label, n in _SIZES:
        lines.append(
            f"{label:>6} | "
            f"{thread[label]['seconds_per_roundtrip'] * 1e6:>12.1f} | "
            f"{process[label]['seconds_per_roundtrip'] * 1e6:>13.1f} | "
            f"{shm[label]['seconds_per_roundtrip'] * 1e6:>10.1f} | "
            f"{process[label]['wire'].get('copied_bytes', 0):>14} | "
            f"{shm[label]['wire'].get('copied_bytes', 0):>10}"
        )
    lines.append(
        "copied = bytes crossing a process boundary by memcpy; the shm "
        "ring delivers >1 KiB frames as zero-copy views (32 MiB exceeds "
        "max_frame and spills to the socket by design)"
    )
    write_result("transport_overhead", "\n".join(lines))
