"""Shared driver for the Figure 4 / Figure 5 repartitioning protocol.

For each processor count: walk the size ladder of
:func:`repro.experiments.laplace.ladder_pairs`; at every size, partition
``M^{t-1}`` ("before"), apply the small refinement, repartition ``M^t``
("after"), and record cut before/after plus raw and label-permuted
migration (measured at the *element* level with an
:class:`~repro.experiments.tracking.AssignmentTracker`, so methods that cut
through refinement trees are accounted fairly).

Results are memoized per (method, dims, plist) so the PNR bench can compare
against the RSB numbers without recomputing them.
"""

from __future__ import annotations

import numpy as np

from repro.core import PNR
from repro.experiments import AssignmentTracker
from repro.experiments.laplace import ladder_pairs
from repro.mesh import cut_size, fine_dual_graph
from repro.partition import (
    apply_permutation,
    minimize_migration_permutation,
    recursive_spectral_bisection,
)


class RSBMethod:
    """Fresh recursive spectral bisection of the fine dual graph each round
    (the paper's Figure 4 baseline)."""

    name = "RSB"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._round = 0

    def partition(self, amesh, p):
        graph, _ = fine_dual_graph(amesh.mesh)
        self._round += 1
        return recursive_spectral_bisection(
            graph, p, seed=self.seed + self._round, refine=True
        )

    repartition = partition


class PNRMethod:
    """PNR on the coarse dual graph, carrying its current assignment."""

    name = "PNR"

    def __init__(self, seed: int = 0, alpha: float = 0.1, beta: float = 0.8):
        self.pnr = PNR(alpha=alpha, beta=beta, seed=seed)
        self.coarse = None

    def partition(self, amesh, p):
        if self.coarse is None:
            self.coarse = self.pnr.initial_partition(amesh, p)
        else:
            self.coarse = self.pnr.repartition(amesh, p, self.coarse)
        return self.pnr.induced_fine(amesh, self.coarse)

    repartition = partition


def run_repartition_protocol(method_factory, plist, dim: int = 2, **ladder_kw):
    """Rows: ``(p, elems_before, cut_before, elems_after, cut_after,
    mig_raw, mig_perm)`` ordered by (size, p) like Figure 4/5."""
    rows = []
    for p in plist:
        method = method_factory()
        tracker = None
        pending = {}
        for phase, k, amesh in ladder_pairs(dim=dim, **ladder_kw):
            if phase == "grow":
                # repartition after every adaptation, as in the paper; the
                # resulting distribution is the baseline for the next round
                fine = np.asarray(method.partition(amesh, p))
                tracker.stamp(fine)
            elif phase == "before":
                fine = np.asarray(method.partition(amesh, p))
                if tracker is None:
                    tracker = AssignmentTracker(amesh)
                tracker.stamp(fine)
                pending = {
                    "elems_before": amesh.n_leaves,
                    "cut_before": cut_size(amesh.mesh, fine),
                    "size_index": k,
                }
            else:
                fine_new = np.asarray(method.repartition(amesh, p))
                inherited = tracker.inherited()
                mig_raw = int(np.count_nonzero(inherited != fine_new))
                perm = minimize_migration_permutation(inherited, fine_new, p)
                fine_perm = apply_permutation(fine_new, perm)
                mig_perm = int(np.count_nonzero(inherited != fine_perm))
                rows.append(
                    (
                        pending["size_index"],
                        p,
                        pending["elems_before"],
                        pending["cut_before"],
                        amesh.n_leaves,
                        cut_size(amesh.mesh, fine_new),
                        mig_raw,
                        mig_perm,
                    )
                )
    rows.sort(key=lambda r: (r[0], r[1]))
    return rows


_CACHE: dict = {}


def cached_protocol(name: str, method_factory, plist, dim: int = 2):
    key = (name, tuple(plist), dim)
    if key not in _CACHE:
        _CACHE[key] = run_repartition_protocol(method_factory, plist, dim=dim)
    return _CACHE[key]
