"""Shared machinery of the reproduction benches.

Every bench (one per paper table/figure, see DESIGN.md's experiment index)
runs its experiment once under ``benchmark.pedantic``, writes the
paper-style table to ``results/<name>.txt``, and asserts the *qualitative
shape* of the paper's result (who wins, by roughly what factor) — absolute
numbers differ because the meshes default to reduced scale.

Set ``REPRO_PAPER_SCALE=1`` for paper-scale meshes and processor counts
(minutes instead of seconds).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def paper_scale() -> bool:
    from repro.runtime.envflags import env_bool

    return env_bool("REPRO_PAPER_SCALE", default=False)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def write_result(results_dir):
    def _write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _write


def proc_counts(reduced, paper):
    """Processor-count list for the current scale."""
    return paper if paper_scale() else reduced
