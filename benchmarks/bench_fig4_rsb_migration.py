"""E3 — Figure 4 (table): migration cost of RSB repartitioning.

A series of adapted 2-D meshes of roughly doubling size; each is
distributed by an RSB partition, slightly refined, then repartitioned by
RSB.  The table reports cut before/after and the migration needed to adopt
the new partition — raw (``C_migrate(Π^t, Π̂^t)``) and after the
Biswas–Oliker subset permutation (``C_migrate(Π^t, Π̃^t)``).

Expected shape (the paper's Section 7 point): RSB migrates a large fraction
of the mesh — around 50–100 % raw, still tens of percent after the optimal
relabeling — and the fraction does not shrink as the mesh grows.
"""

from __future__ import annotations

import numpy as np

from _protocol import RSBMethod, cached_protocol
from conftest import proc_counts
from repro.experiments import format_table


def test_fig4_rsb_migration(benchmark, write_result):
    plist = proc_counts(reduced=[4, 8, 16], paper=[4, 8, 16, 32, 64])
    rows = benchmark.pedantic(
        cached_protocol,
        args=("rsb", lambda: RSBMethod(seed=0), plist),
        rounds=1,
        iterations=1,
    )
    headers = [
        "size#", "p", "elem t-1", "cut t-1", "elem t", "cut t",
        "C_mig raw", "C_mig perm",
    ]
    write_result(
        "fig4_rsb_migration",
        format_table(headers, rows, title="Figure 4: repartitioning with RSB"),
    )
    raw_frac = np.array([r[6] / r[4] for r in rows])
    perm_frac = np.array([r[7] / r[4] for r in rows])
    assert raw_frac.mean() > 0.3, f"RSB raw migration unexpectedly small: {raw_frac}"
    assert perm_frac.mean() > 0.05, f"permuted RSB migration unexpectedly small: {perm_frac}"
    # permutation must never hurt
    assert np.all(perm_frac <= raw_frac + 1e-12)
    benchmark.extra_info["raw_migration_fraction_mean"] = float(raw_frac.mean())
    benchmark.extra_info["perm_migration_fraction_mean"] = float(perm_frac.mean())
