"""The partitioner tradeoff bench: PNR vs Multilevel-KL vs SFC.

One repartition *round* — the per-adaptation cost the coordinator pays — on
the coarse dual graph of a unit-square mesh, with vertex weights bumped in
a corner region to simulate local refinement.  For every strategy in the
registry it reports **wall time**, **edge cut**, **migration volume**
(weight moved off its previous part) and **imbalance** at three scales:

====================  =========  ==============================
scale                 elements   mesh
====================  =========  ==============================
reduced (CI gate)     8,192      ``unit_square(64)``
paper                 135,200    ``unit_square(260)`` ≈ 135,371
million               1,008,200  ``unit_square(710)``
====================  =========  ==============================

The expected shape (and the acceptance criterion of the SFC work): SFC is
≥10x faster than scratch Multilevel-KL at equal ``p`` on the paper-scale
graph, at a worse cut; PNR sits between them on time with the best
cut/migration combination.  At the million scale only SFC runs by default
(a scratch multilevel pass there is minutes of wall clock; pass ``--full``
to include the graph-based strategies anyway — nothing is dropped
silently, the table says so).

Two modes:

* **pytest-benchmark** (reduced scale): three gated timings, compared in CI
  against the committed baseline ``benchmarks/BENCH_sfc.json`` at
  ``median:25%``.  Re-baseline after an intentional change with::

      PYTHONPATH=src python -m pytest benchmarks/bench_sfc_tradeoff.py \
          --benchmark-json=benchmarks/BENCH_sfc.json

* **script** (nightly smoke)::

      PYTHONPATH=src python benchmarks/bench_sfc_tradeoff.py \
          --paper-scale --json results/sfc_tradeoff.json

  runs the paper scale (plus ``--million``), prints the tradeoff table,
  writes the JSON artifact and *asserts* the ≥10x speedup.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.graph.csr import WeightedGraph
from repro.mesh import AdaptiveMesh, coarse_dual_graph, coarse_root_centroids
from repro.partition import (
    graph_cut,
    graph_imbalance,
    make_repartitioner,
    validate_assignment,
)

SCALES = {"reduced": 64, "paper": 260, "million": 710}
METHODS = ("pnr", "mlkl", "sfc")
_P = {"reduced": 8, "paper": 16, "million": 16}


def build_fixture(n: int):
    """Coarse dual graph + root centroids of an ``n x n`` unit square."""
    amesh = AdaptiveMesh.unit_square(n)
    graph = coarse_dual_graph(amesh.mesh)
    coords = coarse_root_centroids(amesh.mesh)
    return graph, coords


def perturb_weights(graph: WeightedGraph, coords: np.ndarray) -> WeightedGraph:
    """The post-adaptation graph: same topology, 4x weight where the
    corner box refined (the Section 6 load pattern)."""
    vwts = graph.vwts.copy()
    corner = (coords[:, 0] < 0.35) & (coords[:, 1] < 0.35)
    vwts[corner] *= 4.0
    return WeightedGraph(graph.xadj, graph.adjncy, graph.ewts, vwts)


def one_round(name: str, graph0, graph1, coords, p: int) -> dict:
    """Initial partition on ``graph0`` (untimed), then the timed
    repartition of ``graph1`` — the steady-state per-round cost."""
    strat = make_repartitioner(name)
    a0 = strat.initial(graph0, p, coords=coords)
    t0 = time.perf_counter()
    a1 = strat.repartition(graph1, p, a0, coords=coords)
    seconds = time.perf_counter() - t0
    validate_assignment(graph1, a1, p)
    return {
        "method": name,
        "p": p,
        "n": graph1.n_vertices,
        "seconds": seconds,
        "cut": float(graph_cut(graph1, a1)),
        "migration": float(graph1.vwts[np.asarray(a0) != np.asarray(a1)].sum()),
        "imbalance": float(graph_imbalance(graph1, a1, p)),
    }


# ---------------------------------------------------------------------- #
# pytest-benchmark mode: the reduced-scale CI gate
# ---------------------------------------------------------------------- #


def _reduced_fixture():
    graph0, coords = build_fixture(SCALES["reduced"])
    return graph0, perturb_weights(graph0, coords), coords


def _bench_round(benchmark, name):
    graph0, graph1, coords = _reduced_fixture()
    p = _P["reduced"]
    strat = make_repartitioner(name)
    a0 = strat.initial(graph0, p, coords=coords)

    a1 = benchmark.pedantic(
        lambda: strat.repartition(graph1, p, a0, coords=coords),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    # correctness guard: the bench must never go fast by being wrong
    validate_assignment(graph1, a1, p)
    assert graph_imbalance(graph1, a1, p) < 0.35


def test_round_reduced_pnr(benchmark):
    _bench_round(benchmark, "pnr")


def test_round_reduced_mlkl(benchmark):
    _bench_round(benchmark, "mlkl")


def test_round_reduced_sfc(benchmark):
    graph0, graph1, coords = _reduced_fixture()
    p = _P["reduced"]
    _bench_round(benchmark, "sfc")
    # the tradeoff holds already at reduced scale: the sfc re-split beats a
    # scratch multilevel pass by a wide margin
    rows = {m: one_round(m, graph0, graph1, coords, p) for m in ("mlkl", "sfc")}
    assert rows["sfc"]["seconds"] * 10 < rows["mlkl"]["seconds"]


# ---------------------------------------------------------------------- #
# script mode: the paper-scale / million-scale smoke
# ---------------------------------------------------------------------- #


def tradeoff_table(rows) -> str:
    hdr = f"{'scale':<9} {'method':<6} {'n':>9} {'p':>3} {'seconds':>9} {'cut':>10} {'migration':>11} {'imbal':>7}"
    lines = [hdr, "-" * len(hdr)]
    for r in rows:
        lines.append(
            f"{r['scale']:<9} {r['method']:<6} {r['n']:>9} {r['p']:>3} "
            f"{r['seconds']:>9.3f} {r['cut']:>10.0f} {r['migration']:>11.0f} "
            f"{r['imbalance']:>7.3f}"
        )
    return "\n".join(lines)


def run_scale(scale: str, methods, rows: list) -> None:
    n = SCALES[scale]
    graph0, coords = build_fixture(n)
    graph1 = perturb_weights(graph0, coords)
    for name in methods:
        r = one_round(name, graph0, graph1, coords, _P[scale])
        r["scale"] = scale
        rows.append(r)
        print(f"  {scale}/{name}: {r['seconds']:.3f}s  cut={r['cut']:.0f}", flush=True)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--paper-scale", action="store_true",
                    help="run the 135k-element scale (the nightly smoke)")
    ap.add_argument("--million", action="store_true",
                    help="also run the 10^6-element scale")
    ap.add_argument("--full", action="store_true",
                    help="run the graph-based strategies at the million "
                         "scale too (minutes of wall clock)")
    ap.add_argument("--json", metavar="PATH",
                    help="write the rows as a JSON artifact")
    args = ap.parse_args(argv)

    rows: list = []
    run_scale("reduced", METHODS, rows)
    if args.paper_scale:
        run_scale("paper", METHODS, rows)
    if args.million:
        run_scale("million", METHODS if args.full else ("sfc",), rows)
        if not args.full:
            print("  million/pnr, million/mlkl skipped (pass --full to run)")

    print()
    print(tradeoff_table(rows))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(rows, fh, indent=2)
        print(f"[written to {args.json}]")

    # the acceptance criterion, asserted at the largest gated scale
    gate = "paper" if args.paper_scale else "reduced"
    by = {(r["scale"], r["method"]): r for r in rows}
    sfc, mlkl = by[(gate, "sfc")], by[(gate, "mlkl")]
    speedup = mlkl["seconds"] / max(sfc["seconds"], 1e-12)
    print(f"\nsfc vs mlkl at {gate} scale: {speedup:.0f}x faster")
    if speedup < 10:
        print("FAIL: sfc must be >= 10x faster than mlkl", file=sys.stderr)
        return 1
    if sfc["imbalance"] > 0.10:
        print("FAIL: sfc imbalance above tolerance", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
