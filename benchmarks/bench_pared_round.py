"""End-to-end PARED round benchmark at the 8192-element fixture.

`bench_pared_system.py` (A3) checks the *qualitative* system properties at
a small mesh; this bench is the whole-round *performance* gate: the full
solve-free adapt→weights→repartition→migrate loop on a 64x64 coarse mesh
(8192 coarse triangles) with 4 ranks and 3 rounds, measured wall-clock.

CI compares the median against the committed baseline
(`benchmarks/BENCH_pared.json`) and fails on a >25% regression — the same
discipline as the kernel bench.  After an intentional data-plane or round
change, re-baseline with

    PYTHONPATH=src python -m pytest benchmarks/bench_pared_round.py \
        --benchmark-json=benchmarks/BENCH_pared.json

and justify the new numbers in the PR (see docs/performance.md).
"""

from __future__ import annotations

import numpy as np

from conftest import paper_scale
from repro.core import PNR
from repro.fem import CornerLaplace2D, interpolation_error_indicator, mark_top_fraction
from repro.mesh import AdaptiveMesh
from repro.pared import ParedConfig, run_pared

#: 64x64 unit square -> 2*64*64 = 8192 coarse triangles
_N = 64
_P = 4
_ROUNDS = 3


_PROB = CornerLaplace2D()


# module-level (picklable) fixture pieces: the shm backend ships the job
# to its persistent rank pool as a pickle frame, and closures/lambdas
# would silently demote it to a one-shot fork — which is exactly the
# setup cost this bench wants amortised away
def _bench_marker(amesh, rnd):
    ind = interpolation_error_indicator(amesh, _PROB.exact)
    return mark_top_fraction(amesh, ind, 0.15), []


def _bench_make_mesh():
    return AdaptiveMesh.unit_square(_N)


def _run_round_fixture(transport=None):
    cfg = ParedConfig(
        p=_P if not paper_scale() else 8,
        make_mesh=_bench_make_mesh,
        marker=_bench_marker,
        rounds=_ROUNDS,
        pnr=PNR(seed=4),
        imbalance_trigger=0.05,
        transport=transport,
    )
    return run_pared(cfg)


def test_pared_round_8192(benchmark):
    histories, stats = benchmark.pedantic(
        _run_round_fixture, rounds=3, iterations=1, warmup_rounds=1
    )

    # correctness guard: the bench must never go fast by being wrong
    hist = histories[0]
    assert hist[0]["leaves"] >= 2 * _N * _N
    for other in histories[1:]:
        for a, b in zip(hist, other):
            assert a["leaves"] == b["leaves"] and a["cut"] == b["cut"]
            assert np.array_equal(a["owner"], b["owner"])
    loads = [h[-1]["local_load"] for h in histories]
    assert sum(loads) == hist[-1]["leaves"]

    # where the time went, attributable per phase (and, with the typed
    # codec in place, per data-plane stage: codec.encode/codec.decode/
    # simmpi.wait) — lands in the benchmark JSON for the record
    perf = stats.kernel_perf or {}
    benchmark.extra_info["kernel_perf"] = {
        name: [calls, round(secs, 4)] for name, (calls, secs) in perf.items()
    }
    benchmark.extra_info["traffic"] = {
        ph: list(v) for ph, v in stats.phase_report().items()
    }
    assert any(name.startswith("pared.") for name in perf), (
        "round phases must be instrumented (stats.kernel_perf empty)"
    )


def test_pared_round_8192_process(benchmark):
    """Same fixture on the process backend: ranks are forked OS processes
    exchanging length-prefixed codec frames over sockets, so on a
    multi-core runner the ranks' Python work actually overlaps (no GIL).
    Ungated for now — the committed `BENCH_pared_process.json` is the
    first baseline, published from CI as an artifact; `extra_info`
    records the host's CPU count so single-core measurements (where
    process overhead cannot be amortised) read as what they are.
    """
    from repro.runtime.envflags import effective_cpu_count

    histories, stats = benchmark.pedantic(
        lambda: _run_round_fixture(transport="process"),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )

    # identical correctness guard — and the histories must match what the
    # threaded backend produces (bit-for-bit, see TestTransportParity)
    hist = histories[0]
    assert hist[0]["leaves"] >= 2 * _N * _N
    for other in histories[1:]:
        for a, b in zip(hist, other):
            assert a["leaves"] == b["leaves"] and a["cut"] == b["cut"]
            assert np.array_equal(a["owner"], b["owner"])
    loads = [h[-1]["local_load"] for h in histories]
    assert sum(loads) == hist[-1]["leaves"]

    perf = stats.kernel_perf or {}
    benchmark.extra_info["kernel_perf"] = {
        name: [calls, round(secs, 4)] for name, (calls, secs) in perf.items()
    }
    benchmark.extra_info["traffic"] = {
        ph: list(v) for ph, v in stats.phase_report().items()
    }
    benchmark.extra_info["cpu_count"] = effective_cpu_count()
    assert any(name.startswith("pared.") for name in perf)


def _noop_rank(comm):
    return comm.rank


def test_pared_round_8192_shm(benchmark):
    """Same fixture on the shm backend: pooled rank processes exchanging
    codec frames through shared-memory rings, sockets only for spill and
    control.  The committed `benchmarks/BENCH_pared_shm.json` is the
    baseline CI gates against (median, 25% tolerance) on runners with
    >= 4 usable cores; elsewhere the timing is recorded ungated.

    `extra_info` additionally records the pool economics: wall seconds of
    a no-op run that had to fork+wire a fresh pool (cold) vs the same
    no-op on the already-warm pool, plus the shm-vs-process wall-time
    ratio of the benched fixture.  On a >= 4-core host the warm dispatch
    must be >= 5x cheaper than the cold fork and shm must beat the
    process backend by >= 1.25x; single-core runners record the numbers
    as what they are.
    """
    from time import perf_counter

    from repro.runtime.envflags import effective_cpu_count
    from repro.runtime.shm import pool_stats, shutdown_pools

    ncpu = effective_cpu_count()
    p = _P if not paper_scale() else 8

    # pool economics: cold fork+wire vs warm dispatch of a no-op job
    shutdown_pools()
    t0 = perf_counter()
    _run_round_fixture(transport="shm")  # cold: builds the pool, warms caches
    cold_run = perf_counter() - t0
    assert pool_stats().get(p, (0,))[0] >= 1, (
        "the bench fixture must engage the persistent pool "
        "(a closure in the job would demote it to a one-shot fork)"
    )
    cold_setup = pool_stats()[p][1]
    t0 = perf_counter()
    _run_round_fixture(transport="shm")
    warm_run = perf_counter() - t0
    t0 = perf_counter()
    from repro.runtime.simmpi import spmd_run

    spmd_run(p, _noop_rank, transport="shm")
    warm_dispatch = perf_counter() - t0

    histories, stats = benchmark.pedantic(
        lambda: _run_round_fixture(transport="shm"),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )

    # identical correctness guard as the thread/process legs
    hist = histories[0]
    assert hist[0]["leaves"] >= 2 * _N * _N
    for other in histories[1:]:
        for a, b in zip(hist, other):
            assert a["leaves"] == b["leaves"] and a["cut"] == b["cut"]
            assert np.array_equal(a["owner"], b["owner"])
    loads = [h[-1]["local_load"] for h in histories]
    assert sum(loads) == hist[-1]["leaves"]

    perf = stats.kernel_perf or {}
    benchmark.extra_info["kernel_perf"] = {
        name: [calls, round(secs, 4)] for name, (calls, secs) in perf.items()
    }
    benchmark.extra_info["traffic"] = {
        ph: list(v) for ph, v in stats.phase_report().items()
    }
    benchmark.extra_info["wire"] = dict(stats.wire_report())
    benchmark.extra_info["cpu_count"] = ncpu
    benchmark.extra_info["pool_cold_setup_seconds"] = round(cold_setup, 4)
    benchmark.extra_info["pool_warm_dispatch_seconds"] = round(
        warm_dispatch, 4
    )
    benchmark.extra_info["cold_run_seconds"] = round(cold_run, 4)
    benchmark.extra_info["warm_run_seconds"] = round(warm_run, 4)
    assert any(name.startswith("pared.") for name in perf)
    assert stats.wire_report().get("ring_frames", 0) > 0, (
        "an shm run must move data frames through the rings"
    )

    # shm-vs-process wall time, one sample each (recorded always, gated
    # only where ranks can actually run in parallel)
    t0 = perf_counter()
    _run_round_fixture(transport="process")
    process_run = perf_counter() - t0
    benchmark.extra_info["process_run_seconds"] = round(process_run, 4)
    benchmark.extra_info["shm_vs_process_speedup"] = round(
        process_run / warm_run, 3
    )

    if ncpu >= 4:
        assert cold_setup >= 5 * warm_dispatch, (
            f"warm pool dispatch ({warm_dispatch:.4f}s) must be >=5x "
            f"cheaper than the cold fork ({cold_setup:.4f}s)"
        )
        assert process_run >= 1.25 * warm_run, (
            f"shm ({warm_run:.3f}s) must beat the process backend "
            f"({process_run:.3f}s) by >=1.25x on a multi-core host"
        )
    else:
        print(
            f"::notice title=shm perf gate skipped::runner reports {ncpu} "
            f"usable core(s) (<4); shm-vs-process and pool-economics "
            f"ratios recorded in extra_info but not gated on this run"
        )
