"""End-to-end PARED round benchmark at the 8192-element fixture.

`bench_pared_system.py` (A3) checks the *qualitative* system properties at
a small mesh; this bench is the whole-round *performance* gate: the full
solve-free adapt→weights→repartition→migrate loop on a 64x64 coarse mesh
(8192 coarse triangles) with 4 ranks and 3 rounds, measured wall-clock.

CI compares the median against the committed baseline
(`benchmarks/BENCH_pared.json`) and fails on a >25% regression — the same
discipline as the kernel bench.  After an intentional data-plane or round
change, re-baseline with

    PYTHONPATH=src python -m pytest benchmarks/bench_pared_round.py \
        --benchmark-json=benchmarks/BENCH_pared.json

and justify the new numbers in the PR (see docs/performance.md).
"""

from __future__ import annotations

import numpy as np

from conftest import paper_scale
from repro.core import PNR
from repro.fem import CornerLaplace2D, interpolation_error_indicator, mark_top_fraction
from repro.mesh import AdaptiveMesh
from repro.pared import ParedConfig, run_pared

#: 64x64 unit square -> 2*64*64 = 8192 coarse triangles
_N = 64
_P = 4
_ROUNDS = 3


def _run_round_fixture(transport=None):
    prob = CornerLaplace2D()

    def marker(amesh, rnd):
        ind = interpolation_error_indicator(amesh, prob.exact)
        return mark_top_fraction(amesh, ind, 0.15), []

    cfg = ParedConfig(
        p=_P if not paper_scale() else 8,
        make_mesh=lambda: AdaptiveMesh.unit_square(_N),
        marker=marker,
        rounds=_ROUNDS,
        pnr=PNR(seed=4),
        imbalance_trigger=0.05,
        transport=transport,
    )
    return run_pared(cfg)


def test_pared_round_8192(benchmark):
    histories, stats = benchmark.pedantic(
        _run_round_fixture, rounds=3, iterations=1, warmup_rounds=1
    )

    # correctness guard: the bench must never go fast by being wrong
    hist = histories[0]
    assert hist[0]["leaves"] >= 2 * _N * _N
    for other in histories[1:]:
        for a, b in zip(hist, other):
            assert a["leaves"] == b["leaves"] and a["cut"] == b["cut"]
            assert np.array_equal(a["owner"], b["owner"])
    loads = [h[-1]["local_load"] for h in histories]
    assert sum(loads) == hist[-1]["leaves"]

    # where the time went, attributable per phase (and, with the typed
    # codec in place, per data-plane stage: codec.encode/codec.decode/
    # simmpi.wait) — lands in the benchmark JSON for the record
    perf = stats.kernel_perf or {}
    benchmark.extra_info["kernel_perf"] = {
        name: [calls, round(secs, 4)] for name, (calls, secs) in perf.items()
    }
    benchmark.extra_info["traffic"] = {
        ph: list(v) for ph, v in stats.phase_report().items()
    }
    assert any(name.startswith("pared.") for name in perf), (
        "round phases must be instrumented (stats.kernel_perf empty)"
    )


def test_pared_round_8192_process(benchmark):
    """Same fixture on the process backend: ranks are forked OS processes
    exchanging length-prefixed codec frames over sockets, so on a
    multi-core runner the ranks' Python work actually overlaps (no GIL).
    Ungated for now — the committed `BENCH_pared_process.json` is the
    first baseline, published from CI as an artifact; `extra_info`
    records the host's CPU count so single-core measurements (where
    process overhead cannot be amortised) read as what they are.
    """
    import os

    histories, stats = benchmark.pedantic(
        lambda: _run_round_fixture(transport="process"),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )

    # identical correctness guard — and the histories must match what the
    # threaded backend produces (bit-for-bit, see TestTransportParity)
    hist = histories[0]
    assert hist[0]["leaves"] >= 2 * _N * _N
    for other in histories[1:]:
        for a, b in zip(hist, other):
            assert a["leaves"] == b["leaves"] and a["cut"] == b["cut"]
            assert np.array_equal(a["owner"], b["owner"])
    loads = [h[-1]["local_load"] for h in histories]
    assert sum(loads) == hist[-1]["leaves"]

    perf = stats.kernel_perf or {}
    benchmark.extra_info["kernel_perf"] = {
        name: [calls, round(secs, 4)] for name, (calls, secs) in perf.items()
    }
    benchmark.extra_info["traffic"] = {
        ph: list(v) for ph, v in stats.phase_report().items()
    }
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    assert any(name.startswith("pared.") for name in perf)
