"""Thin setup.py shim so editable installs work offline (the environment has
setuptools but no `wheel`, which PEP 517 editable builds require)."""

from setuptools import setup

setup()
